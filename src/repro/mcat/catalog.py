"""MCAT — the Metadata Catalog.

One MCAT instance exists per federation zone (the paper's deployments ran
it on Oracle at SDSC).  It is the authoritative record of the logical
name space: collections, data objects of every kind, replicas, the five
metadata classes, ACLs, annotations, audit trail, locks/pins/versions.

The catalog is deliberately *mechanism*: it stores and retrieves rows and
enforces referential rules (unique paths, replica numbering, cascade
deletes).  Policy — which replica to read, whether an ACL permits an
action, lock semantics — lives in :mod:`repro.core`, which calls down
here, mirroring the SRB-server / MCAT split in the real system.

Every public method charges catalog query time to the virtual clock
proportional to the rows it touched, so MCAT cost appears in end-to-end
latencies (and dominates them in the E4 scaling experiment).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db import Database
from repro.errors import (
    AlreadyExists,
    MandatoryMetadataMissing,
    MetadataError,
    NoSuchCollection,
    NoSuchObject,
    NoSuchReplica,
    NotEmpty,
    SrbError,
    VocabularyViolation,
)
from repro.mcat.dublin_core import SchemaRegistry
from repro.mcat.schema import OBJECT_KINDS, PERMISSIONS, build_schema
from repro.obs import Observability
from repro.util import paths
from repro.util.clock import SimClock
from repro.util.ids import IdFactory


def apply_structural(reqs: Sequence[Dict[str, Any]],
                     provided: Dict[str, str],
                     coll_path: str) -> Dict[str, str]:
    """Apply structural requirement rows to a provided attribute dict.

    Pure function so bulk ingest can fetch the (charged) requirement
    rows once per collection and validate N items against them.
    """
    effective = dict(provided)
    missing = []
    for req in reqs:
        attr = req["attr"]
        vocab = req["vocabulary"].split("|") if req["vocabulary"] else None
        if attr not in effective:
            if req["default_value"] is not None:
                effective[attr] = req["default_value"]
            elif req["mandatory"]:
                missing.append(attr)
                continue
            else:
                continue
        if vocab is not None and effective[attr] not in vocab:
            raise VocabularyViolation(
                f"{attr}={effective[attr]!r} not in vocabulary {vocab} "
                f"for collection {coll_path!r}")
    if missing:
        raise MandatoryMetadataMissing(missing)
    return effective


def _num(value: Optional[str]) -> Optional[float]:
    """Numeric mirror of a metadata value, for range comparisons."""
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        return None


class Mcat:
    """Metadata catalog for one zone."""

    QUERY_OVERHEAD_S = 200e-6
    ROW_COST_S = 2e-6

    def __init__(self, zone: str = "demozone",
                 clock: Optional[SimClock] = None,
                 ids: Optional[IdFactory] = None,
                 obs: Optional[Observability] = None):
        self.zone = zone
        self.clock = clock
        self.ids = ids if ids is not None else IdFactory()
        # standalone catalogs (catalog-scale benchmarks) get their own
        # pipeline; federations pass the shared one in
        self.obs = obs if obs is not None else Observability(clock)
        # The backing database is *not* clock-wired: MCAT charges its own
        # per-operation cost so that one logical catalog op = one charge,
        # regardless of how many internal table calls it makes.
        self.db = Database(name=f"mcat-{zone}")
        build_schema(self.db)
        # table handles cached once: the MCAT schema is fixed after build,
        # and _rows_scanned runs on every catalog op (profiled hot path)
        self._tables = [self.db.table(n) for n in self.db.tables()]
        self.schemas = SchemaRegistry()
        # path -> row-id cache for collection resolution.  Row ids are
        # stable (tombstone deletes), so an entry stays valid until the
        # collection is removed or a subtree rename rewrites paths.
        self._coll_rid_cache: Dict[str, int] = {}
        self.cid_cache_hits = 0
        # Cumulative service time this catalog instance spent answering
        # queries.  The clock serialises every charge onto one timeline;
        # busy_s is the per-instance view the sharded-catalog benchmark
        # needs to compute a parallel makespan across K catalog servers.
        self.busy_s = 0.0
        # root and zone collection exist from the start
        self._insert_collection("/", None, owner="srb@localhost", now=0.0)
        self._insert_collection(f"/{zone}", "/", owner="srb@localhost", now=0.0)

    # ------------------------------------------------------------------
    # cost accounting
    # ------------------------------------------------------------------

    def _rows_scanned(self) -> int:
        return sum(t.rows_scanned for t in self._tables)

    @contextmanager
    def _charged(self):
        before = self._rows_scanned()
        try:
            yield
        finally:
            touched = self._rows_scanned() - before
            cost = self.QUERY_OVERHEAD_S + touched * self.ROW_COST_S
            self.busy_s += cost
            self.obs.metrics.inc("mcat.ops")
            if touched:
                self.obs.metrics.inc("mcat.rows_scanned", touched)
                self.obs.tracer.add("catalog_rows", touched)
            if self.clock is not None:
                self.clock.advance(cost)

    # ------------------------------------------------------------------
    # collections
    # ------------------------------------------------------------------

    def _insert_collection(self, path: str, parent: Optional[str],
                           owner: str, now: float) -> int:
        cid = self.ids.next_int("cid")
        rid = self.db.table("collections").insert({
            "cid": cid, "path": path, "parent": parent,
            "owner": owner, "created_at": now,
        })
        self._coll_rid_cache[path] = rid
        return cid

    def create_collection(self, path: str, owner: str, now: float) -> int:
        """Create a collection; its parent must already exist."""
        with self._charged():
            path = paths.normalize(path)
            parent = paths.dirname(path)
            if not self._collection_rid(parent):
                raise NoSuchCollection(f"parent collection {parent!r} missing")
            if self._collection_rid(path):
                raise AlreadyExists(f"collection {path!r} exists")
            if self._object_rid(path):
                raise AlreadyExists(f"an object already has path {path!r}")
            return self._insert_collection(path, parent, owner, now)

    def _collection_rid(self, path: str) -> List[int]:
        rid = self._coll_rid_cache.get(path)
        if rid is not None:
            self.cid_cache_hits += 1
            return [rid]
        rids = self.db.table("collections").lookup_eq("path", path)
        if rids:
            self._coll_rid_cache[path] = rids[0]
        return rids

    def collection_exists(self, path: str) -> bool:
        with self._charged():
            return bool(self._collection_rid(paths.normalize(path)))

    def get_collection(self, path: str) -> Dict[str, Any]:
        with self._charged():
            rids = self._collection_rid(paths.normalize(path))
            if not rids:
                raise NoSuchCollection(f"no collection {path!r}")
            return self.db.table("collections").row_dict(rids[0])

    def child_collections(self, path: str) -> List[Dict[str, Any]]:
        with self._charged():
            t = self.db.table("collections")
            rows = [t.row_dict(r) for r in t.lookup_eq("parent",
                                                       paths.normalize(path))]
            return sorted(rows, key=lambda r: r["path"])

    def subtree_collections(self, prefix: str) -> List[Dict[str, Any]]:
        """The collection at ``prefix`` and every descendant collection.

        BFS over the ``parent`` index, so the charge is O(subtree) rows —
        not a full-table scan per call (the hierarchy invariant says every
        descendant's parent chain passes through ``prefix``).
        """
        with self._charged():
            prefix = paths.normalize(prefix)
            t = self.db.table("collections")
            rids = self._collection_rid(prefix)
            if not rids:
                return []
            out = [t.row_dict(rids[0])]
            frontier = [prefix]
            while frontier:
                parent = frontier.pop()
                for rid in t.lookup_eq("parent", parent):
                    row = t.row_dict(rid)
                    out.append(row)
                    frontier.append(row["path"])
            return sorted(out, key=lambda r: r["path"])

    def remove_collection(self, path: str) -> None:
        """Remove an *empty* collection."""
        with self._charged():
            path = paths.normalize(path)
            rids = self._collection_rid(path)
            if not rids:
                raise NoSuchCollection(f"no collection {path!r}")
            t = self.db.table("collections")
            if t.lookup_eq("parent", path):
                raise NotEmpty(f"collection {path!r} has sub-collections")
            if self.db.table("objects").lookup_eq("coll", path):
                raise NotEmpty(f"collection {path!r} contains objects")
            cid = t.value(rids[0], "cid")
            self._purge_metadata("collection", cid)
            t.delete_row(rids[0])
            self._coll_rid_cache.pop(path, None)

    def rename_subtree(self, old_prefix: str, new_prefix: str) -> int:
        """Rewrite every collection and object path under ``old_prefix``.

        This is the heart of the paper's persistence claim: a recursive
        move changes physical placement and/or the collection hierarchy
        while logical names keep resolving.  Returns entries rewritten.
        """
        with self._charged():
            old_prefix = paths.normalize(old_prefix)
            new_prefix = paths.normalize(new_prefix)
            # paths under old_prefix are about to be rewritten in place
            self._coll_rid_cache.clear()
            colls = self.db.table("collections")
            objs = self.db.table("objects")
            count = 0
            for rid in list(colls.scan()):
                row = colls.row_dict(rid)
                p = row["path"]
                if p == old_prefix or paths.is_ancestor(old_prefix, p):
                    newp = paths.relocate(p, old_prefix, new_prefix)
                    changes = {"path": newp}
                    if row["parent"] is not None:
                        if row["parent"] == old_prefix or \
                                paths.is_ancestor(old_prefix, row["parent"]) or \
                                p == old_prefix:
                            changes["parent"] = paths.dirname(newp)
                    colls.update_row(rid, changes)
                    count += 1
            for rid in list(objs.scan()):
                row = objs.row_dict(rid)
                if paths.is_ancestor(old_prefix, row["path"]):
                    newp = paths.relocate(row["path"], old_prefix, new_prefix)
                    objs.update_row(rid, {"path": newp,
                                          "coll": paths.dirname(newp),
                                          "name": paths.basename(newp)})
                    count += 1
            return count

    # ------------------------------------------------------------------
    # objects
    # ------------------------------------------------------------------

    def create_object(self, path: str, kind: str, owner: str, now: float,
                      data_type: Optional[str] = None,
                      size: Optional[int] = None,
                      target: Optional[str] = None,
                      template: Optional[str] = None,
                      resource_hint: Optional[str] = None,
                      checksum: Optional[str] = None) -> int:
        """Register a new object row; the collection must exist."""
        with self._charged():
            return self._create_object_row(
                path, kind, owner, now, data_type=data_type, size=size,
                target=target, template=template,
                resource_hint=resource_hint, checksum=checksum)

    def _create_object_row(self, path: str, kind: str, owner: str,
                           now: float,
                           data_type: Optional[str] = None,
                           size: Optional[int] = None,
                           target: Optional[str] = None,
                           template: Optional[str] = None,
                           resource_hint: Optional[str] = None,
                           checksum: Optional[str] = None) -> int:
        if kind not in OBJECT_KINDS:
            raise MetadataError(f"unknown object kind {kind!r}")
        path = paths.normalize(path)
        coll = paths.dirname(path)
        if not self._collection_rid(coll):
            raise NoSuchCollection(f"no collection {coll!r}")
        if self._object_rid(path) or self._collection_rid(path):
            raise AlreadyExists(f"path {path!r} already in use")
        oid = self.ids.next_int("oid")
        self.db.table("objects").insert({
            "oid": oid, "path": path, "coll": coll,
            "name": paths.basename(path), "kind": kind,
            "data_type": data_type, "owner": owner,
            "created_at": now, "modified_at": now, "size": size,
            "target": target, "template": template,
            "resource_hint": resource_hint,
            "version": 1, "checked_out_by": None,
            "checksum": checksum,
        })
        return oid

    def create_objects(self, specs: Sequence[Dict[str, Any]], owner: str,
                       now: float) -> List[Any]:
        """Bulk :meth:`create_object`: N rows under one charged block.

        Each spec is the keyword dict of one ``create_object`` call
        (minus ``owner``/``now``).  Returns a list aligned with ``specs``
        holding the new oid, or the :class:`SrbError` that item raised —
        one invalid item does not poison the batch (rows inserted as we
        go, so intra-batch duplicate paths are caught too).
        """
        with self._charged():
            results: List[Any] = []
            for spec in specs:
                try:
                    results.append(
                        self._create_object_row(owner=owner, now=now, **spec))
                except SrbError as exc:
                    results.append(exc)
            return results

    def _object_rid(self, path: str) -> List[int]:
        return self.db.table("objects").lookup_eq("path", path)

    def object_exists(self, path: str) -> bool:
        with self._charged():
            return bool(self._object_rid(paths.normalize(path)))

    def get_object(self, path: str) -> Dict[str, Any]:
        with self._charged():
            rids = self._object_rid(paths.normalize(path))
            if not rids:
                raise NoSuchObject(f"no object {path!r}")
            return self.db.table("objects").row_dict(rids[0])

    def find_object(self, path: str) -> Optional[Dict[str, Any]]:
        with self._charged():
            rids = self._object_rid(paths.normalize(path))
            return self.db.table("objects").row_dict(rids[0]) if rids else None

    def get_object_by_id(self, oid: int) -> Dict[str, Any]:
        with self._charged():
            rids = self.db.table("objects").lookup_eq("oid", oid)
            if not rids:
                raise NoSuchObject(f"no object id {oid}")
            return self.db.table("objects").row_dict(rids[0])

    def get_objects_by_ids(self, oids: Sequence[int]) -> List[Dict[str, Any]]:
        """Object rows for N oids under one charged block.

        The batch half of the query planner's id→row step: one query
        overhead for the whole candidate list instead of one per id.
        Unknown ids are skipped (index candidates can race a delete).
        """
        with self._charged():
            t = self.db.table("objects")
            out = []
            for oid in oids:
                rids = t.lookup_eq("oid", oid)
                if rids:
                    out.append(t.row_dict(rids[0]))
            return out

    def update_object(self, oid: int, **changes: Any) -> None:
        with self._charged():
            rids = self.db.table("objects").lookup_eq("oid", oid)
            if not rids:
                raise NoSuchObject(f"no object id {oid}")
            self.db.table("objects").update_row(rids[0], changes)

    def move_object(self, oid: int, new_path: str) -> None:
        """Logical move: only the path changes; metadata stays attached."""
        with self._charged():
            new_path = paths.normalize(new_path)
            coll = paths.dirname(new_path)
            if not self._collection_rid(coll):
                raise NoSuchCollection(f"no collection {coll!r}")
            if self._object_rid(new_path) or self._collection_rid(new_path):
                raise AlreadyExists(f"path {new_path!r} already in use")
            self.update_object(oid, path=new_path, coll=coll,
                               name=paths.basename(new_path))

    def objects_in_collection(self, coll: str,
                              recursive: bool = False) -> List[Dict[str, Any]]:
        with self._charged():
            coll = paths.normalize(coll)
            t = self.db.table("objects")
            if not recursive:
                rows = [t.row_dict(r) for r in t.lookup_eq("coll", coll)]
            else:
                rows = []
                for rid in t.scan():
                    row = t.row_dict(rid)
                    if row["coll"] == coll or paths.is_ancestor(coll, row["coll"]):
                        rows.append(row)
            return sorted(rows, key=lambda r: r["path"])

    def objects_in_collection_page(self, coll: str,
                                   cursor: Optional[str] = None,
                                   limit: int = 100,
                                   recursive: bool = True
                                   ) -> Tuple[List[Dict[str, Any]],
                                              Optional[str]]:
        """One path-ordered page of a collection's contents.

        Keyset pagination over the sorted ``objects.path`` index: the
        subtree of ``coll`` is exactly the lexicographic path range
        ``(coll + "/", coll + "0")`` ("0" is the character after "/"),
        and a page seeks strictly past ``cursor`` (the last path the
        previous page delivered) — so each page is one charged catalog
        op touching O(page) rows, where the materializing
        :meth:`objects_in_collection` charges the whole subtree at once.

        With ``recursive=False`` only direct children are delivered;
        rows of nested sub-collections inside the scanned range are
        examined (and charged) but skipped.  Returns ``(rows,
        next_cursor)``; ``next_cursor`` is ``None`` once the scan is
        exhausted, else feed it back for the next page.
        """
        with self._charged():
            coll = paths.normalize(coll)
            t = self.db.table("objects")
            prefix = coll.rstrip("/") + "/"
            hi = prefix[:-1] + "0"
            lo = cursor if cursor is not None else prefix
            page_limit = max(1, int(limit))
            out: List[Dict[str, Any]] = []
            next_cursor: Optional[str] = None
            while True:
                # one-row lookahead so an exact-fit page ends the
                # cursor instead of dangling an empty trailing page
                rids = t.lookup_range("path", lo, hi, lo_incl=False,
                                      hi_incl=False, limit=page_limit + 1)
                exhausted = len(rids) <= page_limit
                filled = False
                for i, rid in enumerate(rids):
                    row = t.row_dict(rid)
                    lo = row["path"]
                    if recursive or row["coll"] == coll:
                        out.append(row)
                        if len(out) == page_limit:
                            remaining = not exhausted or i < len(rids) - 1
                            next_cursor = lo if remaining else None
                            filled = True
                            break
                if filled or exhausted:
                    break
            return out, next_cursor

    def links_to(self, target_path: str) -> List[Dict[str, Any]]:
        """Link objects whose target is ``target_path``."""
        with self._charged():
            t = self.db.table("objects")
            out = []
            for rid in t.lookup_eq("kind", "link"):
                row = t.row_dict(rid)
                if row["target"] == target_path:
                    out.append(row)
            return out

    def delete_object(self, oid: int) -> None:
        """Delete the object row and cascade all dependent rows."""
        with self._charged():
            t = self.db.table("objects")
            rids = t.lookup_eq("oid", oid)
            if not rids:
                raise NoSuchObject(f"no object id {oid}")
            for table, col in (("replicas", "oid"), ("locks", "oid"),
                               ("pins", "oid"), ("versions", "oid")):
                tab = self.db.table(table)
                for rid in list(tab.lookup_eq(col, oid)):
                    tab.delete_row(rid)
            self._purge_metadata("object", oid)
            t.delete_row(rids[0])

    def _purge_metadata(self, target_kind: str, target_id: int) -> None:
        for table in ("metadata", "annotations", "acls"):
            tab = self.db.table(table)
            for rid in list(tab.lookup_eq("target_id", target_id)):
                if tab.value(rid, "target_kind") == target_kind:
                    tab.delete_row(rid)

    def count_objects(self) -> int:
        with self._charged():
            return len(self.db.table("objects"))

    def total_objects(self) -> int:
        """Uncharged object count, for stats displays (no clock cost)."""
        return len(self.db.table("objects"))

    def total_replicas(self) -> int:
        """Uncharged replica count, for stats displays (no clock cost)."""
        return len(self.db.table("replicas"))

    def oid_table(self, name: str, oid: int):
        """The table holding rows keyed to object ``oid``.

        On a plain catalog every table lives here, so ``oid`` is unused;
        the sharded router overrides this to resolve the owning shard.
        Lock/pin/version policy in :mod:`repro.core` reaches its rows
        through this accessor so they land next to their object.
        """
        return self.db.table(name)

    # ------------------------------------------------------------------
    # replicas
    # ------------------------------------------------------------------

    def add_replica(self, oid: int, resource: str, physical_path: str,
                    size: int, now: float,
                    container_oid: Optional[int] = None,
                    offset: Optional[int] = None) -> int:
        with self._charged():
            return self._add_replica_row(oid, resource, physical_path, size,
                                         now, container_oid=container_oid,
                                         offset=offset)

    def _add_replica_row(self, oid: int, resource: str, physical_path: str,
                         size: int, now: float,
                         container_oid: Optional[int] = None,
                         offset: Optional[int] = None) -> int:
        existing = self._replica_rows(oid)
        replica_num = 1 + max((r["replica_num"] for r in existing), default=0)
        self.db.table("replicas").insert({
            "rid": self.ids.next_int("rid"), "oid": oid,
            "replica_num": replica_num, "resource": resource,
            "physical_path": physical_path, "size": size,
            "created_at": now, "is_dirty": False,
            "container_oid": container_oid, "offset": offset,
        })
        return replica_num

    def add_replicas(self, specs: Sequence[Dict[str, Any]],
                     now: float) -> List[int]:
        """Bulk :meth:`add_replica`: N rows under one charged block.

        Each spec is the keyword dict of one ``add_replica`` call (minus
        ``now``).  Strict — callers pass already-validated writes, so any
        failure raises.  Numbering is per-object max+1 exactly as in the
        single-row path (a spec list may repeat an oid)."""
        with self._charged():
            return [self._add_replica_row(now=now, **spec) for spec in specs]

    def _replica_rows(self, oid: int) -> List[Dict[str, Any]]:
        t = self.db.table("replicas")
        rows = [t.row_dict(r) for r in t.lookup_eq("oid", oid)]
        return sorted(rows, key=lambda r: r["replica_num"])

    def replicas(self, oid: int) -> List[Dict[str, Any]]:
        with self._charged():
            return self._replica_rows(oid)

    def get_replica(self, oid: int, replica_num: int) -> Dict[str, Any]:
        with self._charged():
            for row in self._replica_rows(oid):
                if row["replica_num"] == replica_num:
                    return row
            raise NoSuchReplica(f"object {oid} has no replica {replica_num}")

    def remove_replica(self, oid: int, replica_num: int) -> None:
        with self._charged():
            t = self.db.table("replicas")
            for rid in list(t.lookup_eq("oid", oid)):
                if t.value(rid, "replica_num") == replica_num:
                    t.delete_row(rid)
                    return
            raise NoSuchReplica(f"object {oid} has no replica {replica_num}")

    def update_replica(self, oid: int, replica_num: int, **changes: Any) -> None:
        with self._charged():
            t = self.db.table("replicas")
            for rid in t.lookup_eq("oid", oid):
                if t.value(rid, "replica_num") == replica_num:
                    t.update_row(rid, changes)
                    return
            raise NoSuchReplica(f"object {oid} has no replica {replica_num}")

    def mark_siblings_dirty(self, oid: int, fresh_replica_num: int) -> None:
        """After a write lands on one replica, others are out of sync."""
        with self._charged():
            t = self.db.table("replicas")
            for rid in t.lookup_eq("oid", oid):
                is_fresh = t.value(rid, "replica_num") == fresh_replica_num
                t.update_row(rid, {"is_dirty": not is_fresh})

    def replicas_on_resource(self, resource: str) -> List[Dict[str, Any]]:
        with self._charged():
            t = self.db.table("replicas")
            return [t.row_dict(r) for r in t.lookup_eq("resource", resource)]

    def container_members(self, container_oid: int) -> List[Dict[str, Any]]:
        """Replica rows whose bytes live inside ``container_oid``."""
        with self._charged():
            t = self.db.table("replicas")
            rows = [t.row_dict(r) for r in t.lookup_eq("container_oid",
                                                       container_oid)]
            return sorted(rows, key=lambda r: (r["offset"] or 0))

    # ------------------------------------------------------------------
    # metadata (five classes; system metadata lives on the object row)
    # ------------------------------------------------------------------

    def _check_metadata_spec(self, target_kind: str, attr: str,
                             value: Optional[str], meta_class: str,
                             schema_name: Optional[str]) -> None:
        if target_kind not in ("object", "collection"):
            raise MetadataError(f"bad metadata target kind {target_kind!r}")
        if meta_class not in ("user", "type", "file-based"):
            raise MetadataError(f"bad metadata class {meta_class!r}")
        if not attr:
            raise MetadataError("metadata attribute name may not be empty")
        if meta_class == "type":
            schema = self.schemas.get(schema_name or "")
            element = schema.element(attr)
            if value is not None:
                element.check(value)

    def _insert_metadata_row(self, target_kind: str, target_id: int,
                             attr: str, value: Optional[str], by: str,
                             now: float, units: Optional[str],
                             meta_class: str,
                             schema_name: Optional[str]) -> int:
        mid = self.ids.next_int("mid")
        self.db.table("metadata").insert({
            "mid": mid, "target_kind": target_kind, "target_id": target_id,
            "meta_class": meta_class, "schema_name": schema_name,
            "attr": attr, "value": value, "value_num": _num(value),
            "units": units, "created_by": by, "created_at": now,
        })
        return mid

    def add_metadata(self, target_kind: str, target_id: int, attr: str,
                     value: Optional[str], by: str, now: float,
                     units: Optional[str] = None,
                     meta_class: str = "user",
                     schema_name: Optional[str] = None) -> int:
        with self._charged():
            self._check_metadata_spec(target_kind, attr, value, meta_class,
                                      schema_name)
            return self._insert_metadata_row(target_kind, target_id, attr,
                                             value, by, now, units,
                                             meta_class, schema_name)

    def add_metadata_bulk(self, specs: Sequence[Dict[str, Any]], by: str,
                          now: float) -> List[int]:
        """Bulk :meth:`add_metadata`: N triples under one charged block.

        Each spec holds ``target_kind``, ``target_id``, ``attr``,
        ``value`` and optionally ``units``/``meta_class``/``schema_name``.
        All specs are validated before any row is inserted, so a bad spec
        raises without leaving a partial batch behind.
        """
        with self._charged():
            full = []
            for spec in specs:
                full.append({
                    "target_kind": spec["target_kind"],
                    "target_id": spec["target_id"],
                    "attr": spec["attr"], "value": spec["value"],
                    "units": spec.get("units"),
                    "meta_class": spec.get("meta_class", "user"),
                    "schema_name": spec.get("schema_name"),
                })
            for spec in full:
                self._check_metadata_spec(spec["target_kind"], spec["attr"],
                                          spec["value"], spec["meta_class"],
                                          spec["schema_name"])
            return [self._insert_metadata_row(by=by, now=now, **spec)
                    for spec in full]

    def _metadata_rows(self, target_kind: str, target_id: int,
                       meta_class: Optional[str]) -> List[Dict[str, Any]]:
        t = self.db.table("metadata")
        rows = []
        for rid in t.lookup_eq("target_id", target_id):
            row = t.row_dict(rid)
            if row["target_kind"] != target_kind:
                continue
            if meta_class is not None and row["meta_class"] != meta_class:
                continue
            rows.append(row)
        return sorted(rows, key=lambda r: r["mid"])

    def get_metadata(self, target_kind: str, target_id: int,
                     meta_class: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._charged():
            return self._metadata_rows(target_kind, target_id, meta_class)

    def get_metadata_bulk(self, targets: Sequence[Any],
                          meta_class: Optional[str] = None
                          ) -> List[List[Dict[str, Any]]]:
        """Metadata of N ``(target_kind, target_id)`` pairs under one
        charged block — the read half of the bulk protocol."""
        with self._charged():
            return [self._metadata_rows(kind, tid, meta_class)
                    for kind, tid in targets]

    def update_metadata(self, mid: int, value: Optional[str],
                        units: Optional[str] = None) -> None:
        with self._charged():
            t = self.db.table("metadata")
            rids = t.lookup_eq("mid", mid)
            if not rids:
                raise MetadataError(f"no metadata row {mid}")
            t.update_row(rids[0], {"value": value, "value_num": _num(value),
                                   "units": units})

    def delete_metadata(self, mid: int) -> None:
        with self._charged():
            t = self.db.table("metadata")
            rids = t.lookup_eq("mid", mid)
            if not rids:
                raise MetadataError(f"no metadata row {mid}")
            t.delete_row(rids[0])

    def copy_metadata(self, src_kind: str, src_id: int,
                      dst_kind: str, dst_id: int, by: str, now: float) -> int:
        """The paper's third ingestion method: copy metadata across objects."""
        copied = 0
        for row in self.get_metadata(src_kind, src_id):
            self.add_metadata(dst_kind, dst_id, row["attr"], row["value"],
                              by=by, now=now, units=row["units"],
                              meta_class=row["meta_class"],
                              schema_name=row["schema_name"])
            copied += 1
        return copied

    # ------------------------------------------------------------------
    # structural metadata (collection-level requirements)
    # ------------------------------------------------------------------

    def define_structural(self, coll_path: str, attr: str,
                          default_value: Optional[str] = None,
                          vocabulary: Optional[Sequence[str]] = None,
                          mandatory: bool = False,
                          comment: Optional[str] = None) -> int:
        with self._charged():
            coll_path = paths.normalize(coll_path)
            if not self._collection_rid(coll_path):
                raise NoSuchCollection(f"no collection {coll_path!r}")
            smid = self.ids.next_int("smid")
            self.db.table("structural_meta").insert({
                "smid": smid, "coll_path": coll_path, "attr": attr,
                "default_value": default_value,
                "vocabulary": "|".join(vocabulary) if vocabulary else None,
                "mandatory": mandatory, "comment": comment,
            })
            return smid

    def structural_for(self, coll_path: str,
                       inherited: bool = True) -> List[Dict[str, Any]]:
        """Structural requirements applying at ``coll_path``.

        With ``inherited``, requirements defined on ancestor collections
        apply too (the curator scenario: "MetaCore for Cultures" defined on
        the parent governs the new "Avian Culture" sub-collection).
        """
        with self._charged():
            coll_path = paths.normalize(coll_path)
            scopes = [coll_path]
            if inherited:
                scopes = paths.ancestors(coll_path) + scopes
            t = self.db.table("structural_meta")
            rows = []
            for scope in scopes:
                for rid in t.lookup_eq("coll_path", scope):
                    rows.append(t.row_dict(rid))
            return rows

    def validate_ingest_metadata(self, coll_path: str,
                                 provided: Dict[str, str]) -> Dict[str, str]:
        """Apply defaults and enforce mandatory/vocabulary rules.

        Returns the effective attribute dict an ingest should attach.
        """
        return apply_structural(self.structural_for(coll_path), provided,
                                coll_path)

    # ------------------------------------------------------------------
    # annotations
    # ------------------------------------------------------------------

    ANNOTATION_TYPES = ("comment", "rating", "errata", "dialogue",
                        "annotation", "memo", "query", "answer")

    def add_annotation(self, target_kind: str, target_id: int, ann_type: str,
                       author: str, text: str, now: float,
                       location: Optional[str] = None) -> int:
        with self._charged():
            if ann_type not in self.ANNOTATION_TYPES:
                raise MetadataError(f"unknown annotation type {ann_type!r}")
            aid = self.ids.next_int("aid")
            self.db.table("annotations").insert({
                "aid": aid, "target_kind": target_kind, "target_id": target_id,
                "ann_type": ann_type, "location": location, "author": author,
                "created_at": now, "text": text,
            })
            return aid

    def annotations_for(self, target_kind: str,
                        target_id: int) -> List[Dict[str, Any]]:
        with self._charged():
            t = self.db.table("annotations")
            rows = [t.row_dict(r) for r in t.lookup_eq("target_id", target_id)
                    if t.row_dict(r)["target_kind"] == target_kind]
            return sorted(rows, key=lambda r: r["aid"])

    def delete_annotation(self, aid: int) -> None:
        with self._charged():
            t = self.db.table("annotations")
            rids = t.lookup_eq("aid", aid)
            if not rids:
                raise MetadataError(f"no annotation {aid}")
            t.delete_row(rids[0])

    # ------------------------------------------------------------------
    # ACL rows (policy in repro.core.access)
    # ------------------------------------------------------------------

    def grant(self, target_kind: str, target_id: int, principal: str,
              permission: str) -> None:
        with self._charged():
            if permission not in PERMISSIONS:
                raise MetadataError(f"unknown permission {permission!r}")
            t = self.db.table("acls")
            # replace any existing grant for the same principal+target
            for rid in list(t.lookup_eq("target_id", target_id)):
                row = t.row_dict(rid)
                if row["target_kind"] == target_kind and \
                        row["principal"] == principal:
                    t.delete_row(rid)
            t.insert({"aclid": self.ids.next_int("aclid"),
                      "target_kind": target_kind, "target_id": target_id,
                      "principal": principal, "permission": permission})

    def revoke(self, target_kind: str, target_id: int, principal: str) -> None:
        with self._charged():
            t = self.db.table("acls")
            for rid in list(t.lookup_eq("target_id", target_id)):
                row = t.row_dict(rid)
                if row["target_kind"] == target_kind and \
                        row["principal"] == principal:
                    t.delete_row(rid)

    def grants_for(self, target_kind: str, target_id: int) -> List[Dict[str, Any]]:
        with self._charged():
            t = self.db.table("acls")
            return [t.row_dict(r) for r in t.lookup_eq("target_id", target_id)
                    if t.row_dict(r)["target_kind"] == target_kind]

    # ------------------------------------------------------------------
    # audit
    # ------------------------------------------------------------------

    def record_audit(self, now: float, principal: str, action: str,
                     target: str, detail: Optional[str] = None,
                     ok: bool = True) -> int:
        with self._charged():
            auid = self.ids.next_int("auid")
            self.db.table("audit").insert({
                "auid": auid, "at": now, "principal": principal,
                "action": action, "target": target, "detail": detail, "ok": ok,
            })
            return auid

    def audit_query(self, principal: Optional[str] = None,
                    action: Optional[str] = None,
                    target: Optional[str] = None) -> List[Dict[str, Any]]:
        with self._charged():
            t = self.db.table("audit")
            if principal is not None:
                rids = t.lookup_eq("principal", principal)
            elif action is not None:
                rids = t.lookup_eq("action", action)
            else:
                rids = list(t.scan())
            rows = []
            for rid in rids:
                row = t.row_dict(rid)
                if action is not None and row["action"] != action:
                    continue
                if principal is not None and row["principal"] != principal:
                    continue
                if target is not None and row["target"] != target:
                    continue
                rows.append(row)
            return sorted(rows, key=lambda r: r["auid"])
