"""Catalog export / import.

The persistent-archive capability is about surviving technology
migration — and the catalog itself is technology that gets migrated
(the paper's MCAT lived on Oracle; its successors moved databases more
than once).  This module serializes an entire MCAT to a plain-JSON
document and rebuilds an equivalent catalog from one, preserving every
table row and the id counters, so a restored catalog keeps numbering
where the original left off.

The dump format is deliberately boring: one JSON object with a format
version, the zone name, the id-counter state, and a rows-per-table map.
Boring formats are what survive decades.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional

from repro.errors import MetadataError
from repro.mcat.catalog import Mcat
from repro.util.clock import SimClock
from repro.util.ids import IdFactory

DUMP_FORMAT_VERSION = 1

#: tables included in a dump, in an order that satisfies references
_TABLES = ("collections", "objects", "replicas", "metadata",
           "structural_meta", "annotations", "acls", "audit", "locks",
           "pins", "versions")

#: id-counter prefixes MCAT mints (kept so restored catalogs keep counting)
_ID_PREFIXES = ("cid", "oid", "rid", "mid", "smid", "aid", "aclid", "auid",
                "lid", "pid", "vid")


def export_catalog(mcat: Mcat) -> str:
    """Serialize the catalog to a JSON string.

    A sharded catalog exports as one merged document: rows from every
    shard primary, with the per-shard copies of the root collections
    deduplicated (shard 0's copy is canonical) — so a dump taken from a
    sharded deployment imports into a plain catalog and vice versa.
    """
    doc: Dict[str, Any] = {
        "format": DUMP_FORMAT_VERSION,
        "zone": mcat.zone,
        "id_counters": {p: mcat.ids.peek(p) for p in _ID_PREFIXES},
        "tables": {},
    }
    shards = getattr(mcat, "shards", None)
    if shards is None:
        for name in _TABLES:
            doc["tables"][name] = mcat.db.table(name).all_rows()
        return json.dumps(doc, indent=1, sort_keys=True)
    for name in _TABLES:
        rows = []
        seen_paths = set()
        for shard in shards:
            for row in shard.primary.db.table(name).all_rows():
                if name == "collections":
                    if row["path"] in seen_paths:
                        continue
                    seen_paths.add(row["path"])
                rows.append(row)
        doc["tables"][name] = rows
    return json.dumps(doc, indent=1, sort_keys=True)


def import_catalog(dump: str, clock: Optional[SimClock] = None) -> Mcat:
    """Rebuild an MCAT from a dump produced by :func:`export_catalog`."""
    try:
        doc = json.loads(dump)
    except json.JSONDecodeError as exc:
        raise MetadataError(f"catalog dump is not valid JSON: {exc}") from exc
    if doc.get("format") != DUMP_FORMAT_VERSION:
        raise MetadataError(
            f"unsupported dump format {doc.get('format')!r}; "
            f"this build reads version {DUMP_FORMAT_VERSION}")
    zone = doc["zone"]
    ids = IdFactory()
    mcat = Mcat(zone=zone, clock=clock, ids=ids)

    # the constructor pre-creates "/" and "/<zone>"; drop them so the dump
    # is authoritative (it contains both)
    colls = mcat.db.table("collections")
    for rid in list(colls.scan()):
        colls.delete_row(rid)

    for name in _TABLES:
        table = mcat.db.table(name)
        for row in doc["tables"].get(name, []):
            table.insert(row)

    # restore counters by advancing each prefix to the dumped value
    for prefix, value in doc["id_counters"].items():
        while ids.peek(prefix) < int(value):
            ids.next_int(prefix)
    return mcat


def migrate_catalog(mcat: Mcat, clock: Optional[SimClock] = None) -> Mcat:
    """One-call catalog technology refresh: export + import.

    Returns a brand-new, independent MCAT holding identical content —
    what a site does when it moves its catalog to a new database server.
    """
    return import_catalog(export_catalog(mcat), clock=clock)
