"""Attribute-based discovery: the MySRB query interface.

The paper describes the query page precisely: each condition has (1) a
metadata-name drop-down populated with "all the metadata names that are
queryable in that collection and every collection in the hierarchy under
the collection", (2) a comparison operator among ``= > < <= >= <> like
not like``, (3) a value box, and (4) a checkbox to *display* the
attribute in the result listing even if it is not constrained.  The
query "is taken as a conjunctive query ... an AND of all the conditions".

:func:`search` implements exactly that against the MCAT, returning one
row per matching object with its logical path and the requested display
attributes.  Annotations and selected system metadata can optionally be
queried too, as the paper allows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from repro.db.sql import like_to_regex
from repro.errors import QueryError
from repro.mcat.catalog import Mcat
from repro.util import paths

OPERATORS = ("=", "<>", ">", "<", ">=", "<=", "like", "not like")

#: system metadata names exposed to the query interface
SYSTEM_ATTRS = ("SYS:owner", "SYS:data_type", "SYS:kind", "SYS:size")


@dataclass(frozen=True)
class Condition:
    """One row of the MySRB query form."""

    attr: str
    op: str = "="
    value: Optional[str] = None
    display: bool = True

    def __post_init__(self):
        if self.op not in OPERATORS:
            raise QueryError(f"unknown operator {self.op!r}; use one of {OPERATORS}")


@dataclass(frozen=True)
class DisplayOnly:
    """A checked display box with no constraint ("one can check the box of
    a metadata name without using it as part of any query condition")."""

    attr: str


@dataclass
class QueryResult:
    columns: List[str]
    rows: List[Tuple[Any, ...]]

    def dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, r)) for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class QueryPage:
    """One cursor page of a :func:`search_page` result.

    ``next_cursor`` is an opaque keyset token (the last path the page
    scanned); ``None`` means the result set is exhausted.  Feeding it
    back to :func:`search_page` resumes strictly after it, so a client
    iterates the full result without any server-side cursor state.
    """

    columns: List[str]
    rows: List[Tuple[Any, ...]]
    next_cursor: Optional[str] = None

    def dicts(self) -> List[Dict[str, Any]]:
        return [dict(zip(self.columns, r)) for r in self.rows]

    def __len__(self) -> int:
        return len(self.rows)


def _match(op: str, stored_value: Optional[str], stored_num: Optional[float],
           wanted: Optional[str]) -> bool:
    """Evaluate one comparison against a stored metadata triple.

    Numeric comparison applies when both sides parse as numbers; otherwise
    lexicographic on the text form, matching how MCAT-on-Oracle behaves
    with a VARCHAR value column plus a numeric mirror.
    """
    if stored_value is None or wanted is None:
        return False
    if op in ("like", "not like"):
        hit = bool(like_to_regex(wanted).match(stored_value))
        return hit if op == "like" else not hit
    try:
        wanted_num: Optional[float] = float(wanted)
    except ValueError:
        wanted_num = None
    a: Any
    b: Any
    if stored_num is not None and wanted_num is not None:
        a, b = stored_num, wanted_num
    else:
        a, b = stored_value, wanted
    if op == "=":
        return a == b
    if op == "<>":
        return a != b
    if op == ">":
        return a > b
    if op == "<":
        return a < b
    if op == ">=":
        return a >= b
    if op == "<=":
        return a <= b
    raise QueryError(f"unknown operator {op!r}")


def queryable_attributes(mcat: Mcat, scope: str,
                         include_system: bool = False) -> List[str]:
    """Attribute names for the drop-down: every metadata name attached to
    any object in ``scope`` or below, plus structural attributes defined
    for the scope's subtree."""
    scope = paths.normalize(scope)
    router = getattr(mcat, "route_queryable_attributes", None)
    if router is not None:
        return router(scope, include_system=include_system)
    names: Set[str] = set()
    objs = {row["oid"] for row in mcat.objects_in_collection(scope, recursive=True)}
    colls = {row["cid"]: row["path"] for row in mcat.subtree_collections(scope)}
    md = mcat.db.table("metadata")
    for rid in md.scan():
        row = md.row_dict(rid)
        if row["target_kind"] == "object" and row["target_id"] in objs:
            names.add(row["attr"])
        elif row["target_kind"] == "collection" and row["target_id"] in colls:
            names.add(row["attr"])
    st = mcat.db.table("structural_meta")
    for rid in st.scan():
        row = st.row_dict(rid)
        if row["coll_path"] in colls.values():
            names.add(row["attr"])
    out = sorted(names)
    if include_system:
        out.extend(SYSTEM_ATTRS)
    return out


def _index_candidates(mcat: Mcat,
                      conditions: Sequence[Condition]) -> Optional[set]:
    """Candidate object ids from the metadata attribute indexes.

    This is the plan a production MCAT uses: drive each condition from
    the ``metadata.attr`` index (touching only rows that *carry* the
    attribute), evaluate the comparison on those rows, and intersect the
    per-condition target sets.  Returns None when no condition can be
    index-driven (caller falls back to the scope scan).

    Only usable when every condition targets plain object metadata —
    ``SYS:``/``ANN:`` pseudo-attributes live outside the metadata table.
    """
    if not conditions:
        return None
    if any(c.attr.startswith(("SYS:", "ANN:")) for c in conditions):
        return None
    md = mcat.db.table("metadata")
    if "attr" not in md.indexed_columns():
        return None
    result: Optional[set] = None
    for cond in conditions:
        targets = set()
        for rid in md.lookup_eq("attr", cond.attr):
            if md.value(rid, "target_kind") != "object":
                continue
            if _match(cond.op, md.value(rid, "value"),
                      md.value(rid, "value_num"), cond.value):
                targets.add(md.value(rid, "target_id"))
        result = targets if result is None else (result & targets)
        if not result:
            return set()
    return result


def search(mcat: Mcat, scope: str,
           conditions: Sequence[Condition | DisplayOnly],
           include_annotations: bool = False,
           include_system: bool = False,
           limit: Optional[int] = None,
           strategy: str = "auto") -> QueryResult:
    """Run a conjunctive attribute query under collection ``scope``.

    Returns one row per matching object: ``path`` first, then a column per
    displayed attribute (multi-valued attributes join with '; ').

    ``strategy`` selects the access plan:

    * ``"scan"``   — enumerate every object under ``scope`` and test each
      (always correct; cost ~ objects in scope);
    * ``"index"``  — drive candidates from the metadata attribute indexes
      and verify scope membership per hit (cost ~ rows carrying the
      queried attributes); falls back to scan when not applicable;
    * ``"auto"``   — index when possible, else scan.  Results are
      identical across strategies (asserted in tests and in E4).
    """
    if strategy not in ("auto", "scan", "index"):
        raise QueryError(f"unknown strategy {strategy!r}")
    scope = paths.normalize(scope)
    # A sharded catalog routes the query to the owning shard (or fans it
    # out) itself; each shard's catalog re-enters this function directly.
    router = getattr(mcat, "route_search", None)
    if router is not None:
        return router(scope, conditions,
                      include_annotations=include_annotations,
                      include_system=include_system,
                      limit=limit, strategy=strategy)
    rows_before = mcat._rows_scanned()
    real_conditions, display_attrs = _condition_plan(conditions)

    candidate_ids: Optional[set] = None
    if strategy in ("auto", "index"):
        candidate_ids = _index_candidates(mcat, real_conditions)
    if candidate_ids is not None:
        # one charged block for the whole candidate list, not one per id
        fetched = mcat.get_objects_by_ids(
            [int(oid) for oid in sorted(candidate_ids)])
        candidates = [obj for obj in fetched
                      if obj["coll"] == scope
                      or paths.is_ancestor(scope, obj["coll"])]
        candidates.sort(key=lambda o: o["path"])
        # and one more for every candidate's metadata (the per-candidate
        # get_metadata calls used to dominate the index plan's cost)
        md_bulk = mcat.get_metadata_bulk(
            [("object", o["oid"]) for o in candidates])
        prefetched: Optional[Dict[int, Any]] = {
            o["oid"]: rows for o, rows in zip(candidates, md_bulk)}
    else:
        candidates = mcat.objects_in_collection(scope, recursive=True)
        prefetched = None

    matched: List[Dict[str, Any]] = []
    attr_cache: Dict[int, Dict[str, List[Tuple[Optional[str], Optional[float]]]]] = {}
    for obj in candidates:
        oid = obj["oid"]
        values = _attribute_values(
            mcat, obj, include_annotations, include_system,
            md_rows=None if prefetched is None else prefetched[oid])
        attr_cache[oid] = values
        ok = True
        for cond in real_conditions:
            stored = values.get(cond.attr, [])
            if not any(_match(cond.op, v, n, cond.value) for v, n in stored):
                ok = False
                break
        if ok:
            matched.append(obj)
            if limit is not None and len(matched) >= limit:
                break

    columns = ["path"] + display_attrs
    rows = []
    for obj in matched:
        values = attr_cache[obj["oid"]]
        row: List[Any] = [obj["path"]]
        for attr in display_attrs:
            stored = values.get(attr, [])
            row.append("; ".join(v for v, _n in stored if v is not None) or None)
        rows.append(tuple(row))
    plan = "index" if candidate_ids is not None else "scan"
    mcat.obs.metrics.inc("mcat.queries", strategy=strategy, plan=plan)
    mcat.obs.metrics.inc("mcat.query_rows_scanned",
                         mcat._rows_scanned() - rows_before,
                         strategy=strategy, plan=plan)
    mcat.obs.metrics.inc("mcat.query_rows_matched", len(matched),
                         strategy=strategy, plan=plan)
    return QueryResult(columns=columns, rows=rows)


def _condition_plan(conditions: Sequence[Condition | DisplayOnly]
                    ) -> Tuple[List[Condition], List[str]]:
    """Split the form rows into constraints and displayed attributes."""
    real_conditions = [c for c in conditions if isinstance(c, Condition)]
    display_attrs: List[str] = []
    for c in conditions:
        attr = c.attr
        show = c.display if isinstance(c, Condition) else True
        if show and attr not in display_attrs:
            display_attrs.append(attr)
    for c in real_conditions:
        if c.value is None:
            raise QueryError(f"condition on {c.attr!r} has no value")
    return real_conditions, display_attrs


def search_page(mcat: Mcat, scope: str,
                conditions: Sequence[Condition | DisplayOnly],
                include_annotations: bool = False,
                include_system: bool = False,
                limit: int = 100,
                cursor: Optional[str] = None) -> QueryPage:
    """One keyset page of :func:`search`, charged per page.

    Same conjunctive semantics and row shape as :func:`search`, but the
    catalog is touched O(page) at a time: candidates stream from the
    sorted ``objects.path`` index strictly after ``cursor`` (paths are
    the stable ordering key — identical to the materializing scan plan's
    order), conditions are evaluated per candidate, and the page closes
    at ``limit`` matches.  A selective filter may examine more than
    ``limit`` candidates to fill a page; an exhausted scan returns
    ``next_cursor=None``.  Sharded catalogs hook ``route_search_page``
    to fan the page out across shards and merge (see
    :meth:`repro.mcat.shard.ShardedMcat.route_search_page`).
    """
    scope = paths.normalize(scope)
    router = getattr(mcat, "route_search_page", None)
    if router is not None:
        return router(scope, conditions,
                      include_annotations=include_annotations,
                      include_system=include_system,
                      limit=limit, cursor=cursor)
    rows_before = mcat._rows_scanned()
    real_conditions, display_attrs = _condition_plan(conditions)
    page_limit = max(1, int(limit))
    matched: List[Dict[str, Any]] = []
    attr_cache: Dict[int, Dict[str, List[Tuple[Optional[str],
                                               Optional[float]]]]] = {}
    next_cursor: Optional[str] = None
    scan_cursor = cursor
    while True:
        batch, scan_cursor = mcat.objects_in_collection_page(
            scope, cursor=scan_cursor, limit=page_limit)
        filled = False
        for i, obj in enumerate(batch):
            values = _attribute_values(mcat, obj, include_annotations,
                                       include_system)
            ok = True
            for cond in real_conditions:
                stored = values.get(cond.attr, [])
                if not any(_match(cond.op, v, n, cond.value)
                           for v, n in stored):
                    ok = False
                    break
            if ok:
                matched.append(obj)
                attr_cache[obj["oid"]] = values
                if len(matched) == page_limit:
                    remaining = scan_cursor is not None or i < len(batch) - 1
                    next_cursor = str(obj["path"]) if remaining else None
                    filled = True
                    break
        if filled or scan_cursor is None:
            break
    columns = ["path"] + display_attrs
    rows = []
    for obj in matched:
        values = attr_cache[obj["oid"]]
        row: List[Any] = [obj["path"]]
        for attr in display_attrs:
            stored = values.get(attr, [])
            row.append("; ".join(v for v, _n in stored if v is not None)
                       or None)
        rows.append(tuple(row))
    mcat.obs.metrics.inc("mcat.queries", strategy="page", plan="scan")
    mcat.obs.metrics.inc("mcat.query_rows_scanned",
                         mcat._rows_scanned() - rows_before,
                         strategy="page", plan="scan")
    mcat.obs.metrics.inc("mcat.query_rows_matched", len(matched),
                         strategy="page", plan="scan")
    return QueryPage(columns=columns, rows=rows, next_cursor=next_cursor)


def _attribute_values(mcat: Mcat, obj: Dict[str, Any],
                      include_annotations: bool, include_system: bool,
                      md_rows: Optional[List[Dict[str, Any]]] = None):
    """attr -> [(value, value_num), ...] for one object.

    ``md_rows`` carries metadata prefetched in bulk (the index plan pays
    one charged block for the whole candidate list); when absent the
    rows are fetched here, one charged call per object (the scan plan
    already enumerated the objects, so its cost profile is unchanged).
    """
    out: Dict[str, List[Tuple[Optional[str], Optional[float]]]] = {}
    if md_rows is None:
        md_rows = mcat.get_metadata("object", obj["oid"])
    for row in md_rows:
        out.setdefault(row["attr"], []).append((row["value"], row["value_num"]))
    if include_annotations:
        for ann in mcat.annotations_for("object", obj["oid"]):
            out.setdefault("ANN:" + ann["ann_type"], []).append((ann["text"], None))
    if include_system:
        out.setdefault("SYS:owner", []).append((obj["owner"], None))
        if obj["data_type"] is not None:
            out.setdefault("SYS:data_type", []).append((obj["data_type"], None))
        out.setdefault("SYS:kind", []).append((obj["kind"], None))
        if obj["size"] is not None:
            out.setdefault("SYS:size", []).append(
                (str(obj["size"]), float(obj["size"])))
    return out
