"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import Federation, SrbClient
from repro.workload import standard_grid


@pytest.fixture
def grid():
    """The paper's standard deployment with admin + curator logged in."""
    return standard_grid()


@pytest.fixture
def fed(grid):
    return grid.fed


@pytest.fixture
def curator(grid):
    return grid.curator


@pytest.fixture
def admin(grid):
    return grid.admin


@pytest.fixture
def home(grid):
    return grid.home


@pytest.fixture
def tiny_fed():
    """A single-host, single-server federation for unit-ish core tests."""
    fed = Federation(zone="demozone")
    fed.add_host("sdsc")
    fed.add_server("srb1", "sdsc", mcat=True)
    fed.add_fs_resource("unix-sdsc", "sdsc")
    fed.default_resource = "unix-sdsc"
    fed.bootstrap_admin()
    return fed


@pytest.fixture
def tiny_admin(tiny_fed):
    client = SrbClient(tiny_fed, "sdsc", "srb1", "srbadmin@sdsc", "hunter2")
    client.login()
    return client
