"""API documentation guarantees: every public item carries a docstring.

The deliverable includes "doc comments on every public item"; this test
makes the promise mechanical.  Public = importable module under
``repro``, plus every class and function whose name does not start with
an underscore defined in one of those modules.
"""

import importlib
import inspect
import pkgutil

import pytest

import repro


def public_modules():
    mods = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        mods.append(importlib.import_module(info.name))
    return mods


MODULES = public_modules()


@pytest.mark.parametrize("module", MODULES,
                         ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), \
        f"{module.__name__} lacks a module docstring"


def public_members():
    seen = set()
    for module in MODULES:
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            if getattr(obj, "__module__", "").split(".")[0] != "repro":
                continue
            key = f"{obj.__module__}.{obj.__qualname__}"
            if key not in seen:
                seen.add(key)
                yield key, obj


MEMBERS = sorted(public_members(), key=lambda kv: kv[0])


@pytest.mark.parametrize("key,obj", MEMBERS, ids=[k for k, _ in MEMBERS])
def test_public_member_has_docstring(key, obj):
    assert obj.__doc__ and obj.__doc__.strip(), f"{key} lacks a docstring"


def test_suite_is_not_vacuous():
    assert len(MODULES) >= 30
    assert len(MEMBERS) >= 60
