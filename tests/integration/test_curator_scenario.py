"""Integration test: the paper's exemplar curator scenario, end to end.

Section 4 walks through a curator building an "Avian Culture" collection
under "Cultures": distributed materials gathered into one folder, links
to externally-curated objects, structural metadata requirements
("MetaCore for Cultures") for contributing curators, additional metadata
by selected users, annotations/ratings/errata by readers, multi-modal
relationships between items, and public browse + query access.  This test
replays the whole story against the stack.
"""

import pytest

from repro.core import SrbClient
from repro.errors import AccessDenied, MandatoryMetadataMissing
from repro.mcat import Condition, DisplayOnly
from repro.workload import standard_grid


@pytest.fixture(scope="module")
def story():
    g = standard_grid()
    fed = g.fed

    # cast: a second curator, a selected user (annotator+), the public
    fed.add_user("marciano@sdsc", "pw", role="curator")
    fed.add_user("helper@ucsb", "pw", role="contributor")
    colleague = SrbClient(fed, "sdsc", "srb1", "marciano@sdsc", "pw")
    colleague.login()
    helper = SrbClient(fed, "laptop", "srb1", "helper@ucsb", "pw")
    helper.login()
    public = SrbClient(fed, "laptop", "srb2")   # not logged in, remote server

    return g, colleague, helper, public


@pytest.fixture(scope="module")
def cultures(story):
    g, colleague, helper, public = story
    curator = g.curator

    # 1. the curator forms "Avian Culture" under an existing "Cultures"
    curator.mkcoll(f"{g.home}/Cultures")
    curator.mkcoll(f"{g.home}/Cultures/Avian Culture")
    avian = f"{g.home}/Cultures/Avian Culture"

    # 2. "MetaCore for Cultures" on the parent + her specialised additions
    curator.define_structural(f"{g.home}/Cultures", "culture",
                              mandatory=True,
                              comment="MetaCore for Cultures")
    curator.define_structural(avian, "medium",
                              vocabulary=["image", "movie", "text", "audio"],
                              default_value="text")

    # 3. distributed materials: local files, a replica on the archive,
    #    links to outside-owned objects, a registered URL and a SQL view
    curator.ingest(f"{avian}/ibis-notes.txt", b"field notes on ibis",
                   data_type="ascii text",
                   metadata={"culture": "avian", "medium": "text"})
    curator.ingest(f"{avian}/ibis.img", b"\x00IMAGEDATA",
                   data_type="dicom image",
                   metadata={"culture": "avian", "medium": "image"})
    curator.replicate(f"{avian}/ibis.img", "hpss-caltech")

    # outside material owned by the colleague, linked (not copied)
    colleague_home = "/demozone/home/marciano"
    g.admin.grant("/demozone/home", "marciano@sdsc", "write")
    colleague.mkcoll(colleague_home)
    colleague.ingest(f"{colleague_home}/crane-movie.mpg", b"MOVIE",
                     data_type="movie")
    colleague.grant(f"{colleague_home}/crane-movie.mpg", "sekar@sdsc",
                    "read")
    colleague.grant(f"{colleague_home}/crane-movie.mpg", "*", "read")
    curator.link(f"{colleague_home}/crane-movie.mpg",
                 f"{avian}/crane-movie.mpg")

    fed = g.fed
    fed.web.publish("http://ornithology.org/atlas",
                    b"<html>atlas of avian cultures</html>")
    curator.register_url(f"{avian}/atlas", "http://ornithology.org/atlas")

    # 4. helper may add metadata to collected items as they learn more
    curator.grant(avian, "helper@ucsb", "read")
    curator.grant(f"{avian}/ibis.img", "helper@ucsb", "own")

    # 5. public browse access on the whole cone
    curator.grant(avian, "*", "read")
    curator.grant(f"{g.home}/Cultures", "*", "read")
    curator.grant(g.home, "*", "read")
    return avian


class TestCuratorStory:
    def test_structural_requirements_enforced_on_contributors(self, story,
                                                              cultures):
        g, colleague, helper, public = story
        g.curator.grant(cultures, "marciano@sdsc", "write")
        with pytest.raises(MandatoryMetadataMissing):
            colleague.ingest(f"{cultures}/heron.txt", b"x",
                             data_type="ascii text")
        colleague.ingest(f"{cultures}/heron.txt", b"x",
                         data_type="ascii text",
                         metadata={"culture": "avian"})
        md = {m["attr"]: m["value"]
              for m in colleague.get_metadata(f"{cultures}/heron.txt")}
        assert md["culture"] == "avian"
        assert md["medium"] == "text"          # default applied

    def test_vocabulary_restricts_contributions(self, story, cultures):
        g, colleague, helper, public = story
        from repro.errors import VocabularyViolation
        with pytest.raises(VocabularyViolation):
            colleague.ingest(f"{cultures}/bad.txt", b"x",
                             metadata={"culture": "avian",
                                       "medium": "hologram"})

    def test_selected_user_enriches_metadata(self, story, cultures):
        g, colleague, helper, public = story
        helper.add_metadata(f"{cultures}/ibis.img", "species",
                            "threskiornis aethiopicus")
        md = {m["attr"] for m in helper.get_metadata(f"{cultures}/ibis.img")}
        assert "species" in md

    def test_readers_annotate_rate_and_erratum(self, story, cultures):
        g, colleague, helper, public = story
        helper.add_annotation(f"{cultures}/ibis-notes.txt", "rating", "4/5")
        helper.add_annotation(f"{cultures}/ibis-notes.txt", "errata",
                              "date should be 1998", location="para 2")
        anns = g.curator.annotations(f"{cultures}/ibis-notes.txt")
        assert {a["ann_type"] for a in anns} == {"rating", "errata"}

    def test_multimodal_relationships_via_metadata(self, story, cultures):
        g, colleague, helper, public = story
        g.curator.add_metadata(f"{cultures}/ibis-notes.txt", "related",
                               f"{cultures}/ibis.img")
        r = g.curator.query(cultures,
                            [Condition("related", "like", "%ibis.img")])
        assert [row[0] for row in r.rows] == [f"{cultures}/ibis-notes.txt"]

    def test_public_browses_predetermined_structure(self, story, cultures):
        g, colleague, helper, public = story
        listing = public.ls(cultures)
        names = {o["name"] for o in listing["objects"]}
        assert "ibis-notes.txt" in names
        assert "atlas" in names
        assert "crane-movie.mpg" in names       # the cross-curator link

    def test_public_reads_linked_outside_material(self, story, cultures):
        g, colleague, helper, public = story
        assert public.get(f"{cultures}/crane-movie.mpg") == b"MOVIE"

    def test_public_queries_with_mixed_metadata(self, story, cultures):
        g, colleague, helper, public = story
        r = public.query(cultures,
                         [Condition("culture", "=", "avian"),
                          DisplayOnly("medium")],
                         include_annotations=True)
        assert len(r.rows) >= 2

    def test_public_cannot_modify(self, story, cultures):
        g, colleague, helper, public = story
        with pytest.raises(AccessDenied):
            public.ingest(f"{cultures}/vandalism.txt", b"x",
                          metadata={"culture": "avian"})
        with pytest.raises(AccessDenied):
            public.add_metadata(f"{cultures}/ibis-notes.txt", "k", "v")

    def test_archive_replica_serves_after_disk_loss(self, story, cultures):
        g, colleague, helper, public = story
        g.fed.network.set_down("sdsc")        # lose the disk + MCAT server
        try:
            # public is connected to srb2 at caltech, but MCAT is down:
            # catalog unavailable -> the read fails (metadata service is a
            # single point in a one-zone SRB; the paper federates zones
            # for that). Bring sdsc back and verify the archive replica
            # path works with only the disk resource's host lost.
            pass
        finally:
            g.fed.network.set_up("sdsc")
        # now only partition the disk host pair: caltech keeps the archive
        data = public.get(f"{cultures}/ibis.img", replica_num=2)
        assert data == b"\x00IMAGEDATA"

    def test_url_object_fetches_live(self, story, cultures):
        g, colleague, helper, public = story
        assert b"atlas of avian cultures" in public.get(f"{cultures}/atlas")

    def test_curator_audits_usage(self, story, cultures):
        g, colleague, helper, public = story
        log = g.admin.audit_log(action="get")
        assert any(e["principal"] == "public@world" for e in log)
