"""Stateful property test: sharded catalog under partitions and repair.

A hypothesis RuleBasedStateMachine drives a ShardedMcat (3 shards, one
replica each) with a mix of creates, deletes, metadata writes,
cross-shard renames, replica partitions/heals and anti-entropy passes,
while keeping a plain-Python model of the expected namespace.  The
invariants assert, after every rule, that:

* every object the model knows resolves (reads may be served by a
  replica that was partitioned mid-write and later healed),
* there is no catalog row without a reachable copy — every replica row
  points at a live object row on some shard,
* there are no orphaned rows — metadata rows always have a live target,
* the id directories route every live oid/cid to the shard that holds
  the row.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.errors import SrbError
from repro.mcat import ShardedMcat

OWNER = "sekar@sdsc"
ZONE = "demozone"
PROJECTS = ["alpha", "beta", "gamma", "delta", "epsilon"]
NAMES = [f"f{i}" for i in range(5)]


class ShardRepairMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        # staleness=0: reads always see the latest write, so the model
        # invariants can demand exact resolution after every rule
        self.m = ShardedMcat(zone=ZONE, shards=3, replicas=1, staleness=0)
        for proj in PROJECTS:
            self.m.create_collection(f"/{ZONE}/{proj}", OWNER, now=0.0)
        self.model = {}      # path -> oid
        self.now = 0.0

    def tick(self):
        self.now += 1.0
        return self.now

    # -- rules ----------------------------------------------------------

    @rule(proj=st.sampled_from(PROJECTS), name=st.sampled_from(NAMES))
    def create(self, proj, name):
        path = f"/{ZONE}/{proj}/{name}"
        if path in self.model:
            return
        oid = self.m.create_object(path, "data", OWNER, now=self.tick())
        self.m.add_replica(oid, "r0", f"/vault{path}", 64, now=self.now)
        self.model[path] = oid

    @rule(proj=st.sampled_from(PROJECTS), name=st.sampled_from(NAMES))
    def delete(self, proj, name):
        path = f"/{ZONE}/{proj}/{name}"
        oid = self.model.pop(path, None)
        if oid is None:
            return
        for rep in self.m.replicas(oid):
            self.m.remove_replica(oid, rep["replica_num"])
        self.m.delete_object(oid)

    @rule(proj=st.sampled_from(PROJECTS), name=st.sampled_from(NAMES),
          value=st.text(min_size=1, max_size=6, alphabet="abcdef123"))
    def tag(self, proj, name, value):
        oid = self.model.get(f"/{ZONE}/{proj}/{name}")
        if oid is None:
            return
        self.m.add_metadata("object", oid, "tag", value, by=OWNER,
                            now=self.tick())

    @rule(src=st.sampled_from(PROJECTS), dst=st.sampled_from(PROJECTS))
    def rename_across(self, src, dst):
        if src == dst:
            return
        old, new = f"/{ZONE}/{src}", f"/{ZONE}/{dst}/sub"
        if self.m.collection_exists(new) \
                or any(p.startswith(new + "/") or p == new
                       for p in self.model):
            return
        try:
            moved = self.m.rename_subtree(old, new)
        except SrbError:
            return
        assert moved >= 1
        remap = {}
        for path, oid in self.model.items():
            if path.startswith(old + "/"):
                remap[new + path[len(old):]] = oid
            else:
                remap[path] = oid
        self.model = remap
        # the partition root must survive renames (it is recreated by
        # rename only when the whole subtree moved away)
        if not self.m.collection_exists(old):
            self.m.create_collection(old, OWNER, now=self.tick())

    @rule(k=st.integers(min_value=0, max_value=2))
    def partition(self, k):
        self.m.partition_replica(k, 0)

    @rule(k=st.integers(min_value=0, max_value=2))
    def heal(self, k):
        self.m.heal_replica(k, 0)

    @rule()
    def repair(self):
        reachable = sum(1 for s in self.m.shards for r in s.replicas
                        if not r.partitioned)
        stats = self.m.anti_entropy()
        assert stats["checked"] == reachable
        # after repair every reachable replica is caught up
        assert self.m.replication_lag() == 0

    @rule()
    def compact(self):
        self.m.compact_log()

    # -- invariants -----------------------------------------------------

    def primaries(self):
        return [s.primary for s in self.m.shards]

    @invariant()
    def model_objects_resolve(self):
        if not hasattr(self, "m"):
            return
        for path, oid in self.model.items():
            row = self.m.get_object(path)
            assert row["oid"] == oid

    @invariant()
    def no_row_without_reachable_copy(self):
        if not hasattr(self, "m"):
            return
        live_oids = set()
        for p in self.primaries():
            t = p.db.table("objects")
            live_oids |= {t.value(r, "oid") for r in t.scan()}
        assert live_oids == set(self.model.values())
        for p in self.primaries():
            t = p.db.table("replicas")
            for rid in t.scan():
                assert t.value(rid, "oid") in live_oids

    @invariant()
    def no_orphaned_metadata(self):
        if not hasattr(self, "m"):
            return
        live_oids = set(self.model.values())
        for p in self.primaries():
            t = p.db.table("metadata")
            for rid in t.scan():
                if t.value(rid, "target_kind") == "object":
                    assert t.value(rid, "target_id") in live_oids

    @invariant()
    def directories_route_to_owning_shard(self):
        if not hasattr(self, "m"):
            return
        for k, p in enumerate(self.primaries()):
            t = p.db.table("objects")
            for rid in t.scan():
                oid = t.value(rid, "oid")
                assert self.m._shard_of_id("oid", oid) == k


ShardRepairMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestShardRepairMachine = ShardRepairMachine.TestCase
