"""Stateful property test: random operation sequences vs a model.

A hypothesis RuleBasedStateMachine drives a single-zone grid with a mix
of namespace, data, replication, locking and metadata operations while
maintaining a plain-Python model of the expected state.  After every
rule the invariants assert that:

* every live object's bytes match the model (default read),
* the namespace listing matches the model exactly,
* replica bookkeeping stays consistent (numbers unique, exactly one
  clean copy after unsynced writes, none dirty after synchronize),
* the virtual clock never goes backwards.
"""

from hypothesis import HealthCheck, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core import Federation, SrbClient
from repro.errors import LockConflict, SrbError

NAMES = [f"f{i}" for i in range(6)]
COLL = "/z/w"


class GridMachine(RuleBasedStateMachine):
    @initialize()
    def build(self):
        self.fed = Federation(zone="z")
        self.fed.add_host("h0")
        self.fed.add_host("h1")
        self.fed.add_server("s0", "h0", mcat=True)
        self.fed.add_fs_resource("r0", "h0")
        self.fed.add_fs_resource("r1", "h1")
        self.fed.default_resource = "r0"
        self.fed.bootstrap_admin()
        self.client = SrbClient(self.fed, "h0", "s0", "srbadmin@sdsc",
                                "hunter2")
        self.client.login()
        self.client.mkcoll(COLL)
        self.model = {}           # name -> bytes
        self.locked = set()       # names currently exclusively locked
        self.last_clock = self.fed.clock.now

    # -- rules -----------------------------------------------------------

    @rule(name=st.sampled_from(NAMES), data=st.binary(min_size=1,
                                                      max_size=40))
    def ingest(self, name, data):
        if name in self.model:
            return
        self.client.ingest(f"{COLL}/{name}", data)
        self.model[name] = data

    @rule(name=st.sampled_from(NAMES), data=st.binary(min_size=1,
                                                      max_size=40))
    def put(self, name, data):
        if name not in self.model:
            return
        self.client.put(f"{COLL}/{name}", data)
        self.model[name] = data

    @rule(name=st.sampled_from(NAMES))
    def replicate(self, name):
        if name not in self.model:
            return
        oid = self.fed.mcat.get_object(f"{COLL}/{name}")["oid"]
        if len(self.fed.mcat.replicas(oid)) >= 3:
            return
        self.client.replicate(f"{COLL}/{name}", "r1")

    @rule(name=st.sampled_from(NAMES))
    def synchronize(self, name):
        if name not in self.model:
            return
        self.client.synchronize(f"{COLL}/{name}")
        oid = self.fed.mcat.get_object(f"{COLL}/{name}")["oid"]
        assert all(not r["is_dirty"] for r in self.fed.mcat.replicas(oid))

    @rule(name=st.sampled_from(NAMES))
    def delete(self, name):
        if name not in self.model:
            return
        self.client.delete(f"{COLL}/{name}")
        del self.model[name]
        self.locked.discard(name)

    @rule(src=st.sampled_from(NAMES), dst=st.sampled_from(NAMES))
    def move(self, src, dst):
        if src not in self.model or dst in self.model or src == dst:
            return
        self.client.move(f"{COLL}/{src}", f"{COLL}/{dst}")
        self.model[dst] = self.model.pop(src)
        if src in self.locked:
            self.locked.discard(src)
            self.locked.add(dst)

    @rule(name=st.sampled_from(NAMES))
    def lock_exclusive(self, name):
        if name not in self.model or name in self.locked:
            return
        self.client.lock(f"{COLL}/{name}", "exclusive")
        self.locked.add(name)

    @rule(name=st.sampled_from(NAMES))
    def unlock(self, name):
        if name not in self.model:
            return
        self.client.unlock(f"{COLL}/{name}")
        self.locked.discard(name)

    @rule(name=st.sampled_from(NAMES),
          attr=st.sampled_from(["a", "b"]),
          value=st.text(min_size=1, max_size=8,
                        alphabet="abcdefghij0123456789"))
    def add_metadata(self, name, attr, value):
        if name not in self.model:
            return
        self.client.add_metadata(f"{COLL}/{name}", attr, value)

    # -- invariants -----------------------------------------------------------

    @invariant()
    def contents_match_model(self):
        if not hasattr(self, "model"):
            return
        for name, data in self.model.items():
            # the owner holds its own locks, so reads always succeed
            assert self.client.get(f"{COLL}/{name}") == data

    @invariant()
    def listing_matches_model(self):
        if not hasattr(self, "model"):
            return
        listed = {o["name"] for o in self.client.ls(COLL)["objects"]}
        assert listed == set(self.model)

    @invariant()
    def replica_bookkeeping_consistent(self):
        if not hasattr(self, "model"):
            return
        for name in self.model:
            oid = self.fed.mcat.get_object(f"{COLL}/{name}")["oid"]
            reps = self.fed.mcat.replicas(oid)
            nums = [r["replica_num"] for r in reps]
            assert len(nums) == len(set(nums))
            assert any(not r["is_dirty"] for r in reps)

    @invariant()
    def clock_monotone(self):
        if not hasattr(self, "fed"):
            return
        assert self.fed.clock.now >= self.last_clock
        self.last_clock = self.fed.clock.now


GridMachine.TestCase.settings = settings(
    max_examples=25, stateful_step_count=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])

TestGridMachine = GridMachine.TestCase
