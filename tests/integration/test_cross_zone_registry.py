"""Cross-zone policy, checked against the whole dispatch registry.

Rather than spot-checking a handful of operations, these tests walk every
registered op that takes a subject path and assert the declarative zone
policy holds uniformly: *forwardable* reads on a foreign-zone path
execute at the peer zone's MCAT server (its ``ops_served`` advances, ours
does not), and *writes* refuse the foreign path with
``UnsupportedOperation`` before any work happens in either zone.

The op list is static so pytest can parametrize at collection time; a
completeness test pins it to the live registry, so adding an op without
classifying it here fails loudly.
"""

import inspect

import pytest

from repro.core import Federation, SrbClient
from repro.errors import SrbError, UnsupportedOperation
from repro.net.simnet import Network

FOREIGN_FILE = "/npaci-zone/pub/report.txt"
FOREIGN_COLL = "/npaci-zone/pub"

#: Every registered op with a scope argument (see test_list_is_complete).
SCOPED_OPS = [
    "add_annotation", "add_metadata", "annotations", "checkin", "checkout",
    "compact_container", "container_garbage", "copy", "copy_metadata",
    "create_container", "define_structural", "delete", "delete_metadata",
    "extract_metadata", "get", "get_metadata", "get_version", "grant",
    "ingest", "ingest_replica", "link", "list_collection",
    "list_collection_page", "lock",
    "migrate_collection", "mkcoll", "move", "physical_move", "pin", "put",
    "query", "query_page", "queryable_attrs", "register_directory",
    "register_file",
    "register_method", "register_replica", "register_sql", "register_url",
    "replicate", "revoke", "rmcoll", "stat", "structural_metadata",
    "sync_container", "synchronize", "unlock", "unpin", "update_metadata",
    "verify_checksums", "versions",
]

#: The ops that take no subject path and therefore never zone-check.
UNSCOPED_OPS = {"auth_challenge", "auth_login", "bulk_ingest", "bulk_get",
                "bulk_query_metadata", "audit_log"}

#: Filler values for required non-scope parameters.  Writes raise before
#: the handler ever sees them; reads reach the peer, which may still
#: reject them (any SrbError there proves the call was forwarded).
FILLERS = {
    "dst": "/npaci-zone/pub/copy-dst.txt",
    "target": "/outside/elsewhere",
    "data": b"x",
    "conditions": [],
    "mid": 1,
    "version_num": 1,
    "resource": "a-disk",
    "physical_path": "/outside/x",
    "physical_dir": "/outside/dir",
    "sql": "SELECT x FROM t",
    "url": "http://example.org/r",
    "server": "a-srb",
    "command": "srbps",
    "attr": "series",
    "value": "v",
    "method": "m",
    "logical_resource": "a-disk",
    "principal_str": "sekar@sdsc",
    "permission": "read",
    "ann_type": "note",
    "text": "t",
}


@pytest.fixture
def zones():
    """Two federated zones; sekar@sdsc (zone A) may read zone B's pub."""
    net = Network()
    a = Federation(zone="sdsc-zone", network=net)
    b = Federation(zone="npaci-zone", network=net)
    a.add_host("a-host")
    b.add_host("b-host")
    a.add_server("a-srb", "a-host", mcat=True)
    b.add_server("b-srb", "b-host", mcat=True)
    a.add_fs_resource("a-disk", "a-host")
    b.add_fs_resource("b-disk", "b-host")
    a.default_resource = "a-disk"
    b.default_resource = "b-disk"
    a.bootstrap_admin()
    b.bootstrap_admin("admin-b@npaci", "pw-b")
    a.federate_with(b)

    admin_b = SrbClient(b, "b-host", "b-srb", "admin-b@npaci", "pw-b")
    admin_b.login()
    admin_b.mkcoll(FOREIGN_COLL)
    admin_b.ingest(FOREIGN_FILE, b"inter-zone bytes")
    admin_b.grant("/npaci-zone", "sekar@sdsc", "read")
    admin_b.grant(FOREIGN_COLL, "sekar@sdsc", "read")
    admin_b.grant(FOREIGN_FILE, "sekar@sdsc", "read")

    a.add_user("sekar@sdsc", "pw", role="curator")
    user_a = SrbClient(a, "a-host", "a-srb", "sekar@sdsc", "pw")
    user_a.login()
    return a, b, user_a


def _build_call(a_srv, name):
    """The façade bound method plus kwargs aiming the op at zone B."""
    spec = a_srv.dispatch.get(name).spec
    fn = getattr(a_srv, name)
    scope_value = (FOREIGN_COLL if spec.scope_arg in ("coll", "scope")
                   else FOREIGN_FILE)
    kwargs = {spec.scope_arg: scope_value}
    for param in inspect.signature(fn).parameters.values():
        if param.name in ("ticket", spec.scope_arg):
            continue
        if param.default is inspect.Parameter.empty:
            kwargs[param.name] = FILLERS[param.name]
    return spec, fn, kwargs


def test_list_is_complete(zones):
    a, b, user_a = zones
    registry = a.server("a-srb").dispatch
    assert {s.name for s in registry.specs()
            if s.scope_arg} == set(SCOPED_OPS)
    assert {s.name for s in registry.specs()
            if not s.scope_arg} == UNSCOPED_OPS


@pytest.mark.parametrize("name", SCOPED_OPS)
def test_foreign_zone_policy(zones, name):
    a, b, user_a = zones
    a_srv = a.server("a-srb")
    b_srv = b.server("b-srb")
    spec, fn, kwargs = _build_call(a_srv, name)
    a_before = a_srv.ops_served
    b_before = b_srv.ops_served

    if spec.forwardable:
        try:
            fn(user_a.ticket, **kwargs)
        except UnsupportedOperation as exc:
            pytest.fail(f"{name} is declared forwardable but refused the "
                        f"foreign path: {exc}")
        except SrbError:
            pass  # rejected by the *peer* — still proves it forwarded
        assert b_srv.ops_served == b_before + 1, \
            f"{name}: peer server did not serve the forwarded call"
        assert a_srv.ops_served == a_before, \
            f"{name}: forwarded call must not count as a local op"
    else:
        assert spec.write
        with pytest.raises(UnsupportedOperation, match="foreign zone"):
            fn(user_a.ticket, **kwargs)
        assert a_srv.ops_served == a_before
        assert b_srv.ops_served == b_before, \
            f"{name}: refused write must never reach the peer"
