"""Documentation consistency checks.

DESIGN.md promises an experiment index and EXPERIMENTS.md promises a
section per experiment; these tests keep the promises honest as the
benchmark suite grows.
"""

import os
import re

import pytest

REPO = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))


def read(name: str) -> str:
    with open(os.path.join(REPO, name)) as fh:
        return fh.read()


def bench_files():
    bdir = os.path.join(REPO, "benchmarks")
    return sorted(f for f in os.listdir(bdir)
                  if f.startswith("test_") and f.endswith(".py"))


class TestExperimentIndex:
    def test_every_bench_file_in_experiments_md(self):
        text = read("EXPERIMENTS.md")
        for fname in bench_files():
            assert fname in text, \
                f"benchmarks/{fname} missing from EXPERIMENTS.md"

    def test_every_experiment_id_has_bench(self):
        """Each Ek/Fk/Ak id mentioned in EXPERIMENTS.md headings maps to a
        real benchmark file."""
        text = read("EXPERIMENTS.md")
        ids = re.findall(r"^## ([EFA]\d+)", text, flags=re.MULTILINE)
        assert len(ids) >= 13
        files = " ".join(bench_files())
        for exp_id in ids:
            slug = exp_id.lower().replace("f", "fig")   # F1 -> fig1
            assert slug in files, \
                f"{exp_id} has no benchmarks/test_{slug}*.py"

    def test_design_md_confirms_paper_identity(self):
        text = read("DESIGN.md")
        assert "HPDC 2002" in text
        assert "Rajasekar" in text

    def test_design_lists_all_subpackages(self):
        text = read("DESIGN.md")
        src = os.path.join(REPO, "src", "repro")
        packages = sorted(d for d in os.listdir(src)
                          if os.path.isdir(os.path.join(src, d)))
        for pkg in packages:
            assert f"{pkg}/" in text, f"DESIGN.md does not mention {pkg}/"


class TestReadme:
    def test_examples_listed(self):
        text = read("README.md")
        edir = os.path.join(REPO, "examples")
        for fname in os.listdir(edir):
            if fname.endswith(".py"):
                assert f"examples/{fname}" in text, \
                    f"README.md does not list examples/{fname}"

    def test_canonical_commands_present(self):
        text = read("README.md")
        assert "pip install -e ." in text
        assert "pytest tests/" in text
        assert "pytest benchmarks/ --benchmark-only" in text


class TestExamplesRunnable:
    @pytest.mark.parametrize("script", [
        "quickstart.py", "avian_culture.py", "persistent_archive.py",
        "cross_zone.py", "scommand_session.py", "sky_survey.py",
    ])
    def test_example_runs_clean(self, script):
        import subprocess
        import sys
        result = subprocess.run(
            [sys.executable, os.path.join(REPO, "examples", script)],
            capture_output=True, timeout=300)
        assert result.returncode == 0, result.stderr.decode()[-2000:]
