"""Integration tests for cross-zone federation.

The paper positions data grids as spanning "multiple administration
domains"; SRB's later releases federated whole *zones* (each with its own
MCAT and ticket authority).  This extension implements that: two zones
peer (`federate_with`), tickets cross-validate, and read operations on
paths in the peer's name space are forwarded to a server there, where the
peer's ACLs authorize the foreign principal.
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import (
    AccessDenied,
    InvalidTicket,
    NoSuchServer,
    SrbError,
    UnsupportedOperation,
)
from repro.mcat import Condition
from repro.net.simnet import Network


@pytest.fixture
def zones():
    """Two federated zones on one network: sdsc-zone and npaci-zone."""
    net = Network()
    a = Federation(zone="sdsc-zone", network=net)
    b = Federation(zone="npaci-zone", network=net)
    a.add_host("a-host")
    b.add_host("b-host")
    a.add_server("a-srb", "a-host", mcat=True)
    b.add_server("b-srb", "b-host", mcat=True)
    a.add_fs_resource("a-disk", "a-host")
    b.add_fs_resource("b-disk", "b-host")
    a.default_resource = "a-disk"
    b.default_resource = "b-disk"
    a.bootstrap_admin()
    b.bootstrap_admin("admin-b@npaci", "pw-b")
    a.federate_with(b)

    # content in zone B, curated by B's admin
    admin_b = SrbClient(b, "b-host", "b-srb", "admin-b@npaci", "pw-b")
    admin_b.login()
    admin_b.mkcoll("/npaci-zone/pub")
    admin_b.ingest("/npaci-zone/pub/report.txt", b"inter-zone bytes")
    admin_b.add_metadata("/npaci-zone/pub/report.txt", "series", "reports")

    # a user homed in zone A
    a.add_user("sekar@sdsc", "pw", role="curator")
    user_a = SrbClient(a, "a-host", "a-srb", "sekar@sdsc", "pw")
    user_a.login()
    return a, b, admin_b, user_a


class TestPeering:
    def test_requires_shared_network(self):
        a = Federation(zone="za")
        b = Federation(zone="zb")
        with pytest.raises(SrbError):
            a.federate_with(b)

    def test_rejects_same_zone_name(self):
        net = Network()
        a = Federation(zone="z", network=net)
        b = Federation(zone="z", network=net)
        with pytest.raises(SrbError):
            a.federate_with(b)

    def test_rejects_self(self):
        a = Federation(zone="z")
        with pytest.raises(SrbError):
            a.federate_with(a)

    def test_unfederated_zone_lookup_fails(self):
        a = Federation(zone="z")
        with pytest.raises(NoSuchServer):
            a.peer_zone("elsewhere")


class TestCrossZoneReads:
    def test_read_forwarded_after_grant(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub/report.txt", "sekar@sdsc", "read")
        data = user_a.get("/npaci-zone/pub/report.txt")
        assert data == b"inter-zone bytes"

    def test_peer_acls_enforced_for_foreign_principal(self, zones):
        a, b, admin_b, user_a = zones
        # no grant in zone B -> denied there, not at home
        with pytest.raises(AccessDenied):
            user_a.get("/npaci-zone/pub/report.txt")

    def test_browse_peer_collection(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "sekar@sdsc", "read")
        listing = user_a.ls("/npaci-zone/pub")
        assert [o["name"] for o in listing["objects"]] == ["report.txt"]

    def test_stat_and_metadata_forwarded(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "sekar@sdsc", "read")
        info = user_a.stat("/npaci-zone/pub/report.txt")
        assert info["size"] == len(b"inter-zone bytes")
        md = user_a.get_metadata("/npaci-zone/pub/report.txt")
        assert md[0]["attr"] == "series"

    def test_query_forwarded(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "sekar@sdsc", "read")
        r = user_a.query("/npaci-zone/pub",
                         [Condition("series", "=", "reports")])
        assert [row[0] for row in r.rows] == ["/npaci-zone/pub/report.txt"]

    def test_star_grant_covers_foreign_public(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "*", "read")
        assert user_a.get("/npaci-zone/pub/report.txt") == b"inter-zone bytes"

    def test_forwarding_costs_a_hop(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "*", "read")
        net = a.network
        m0 = net.messages_sent
        user_a.get("/npaci-zone/pub/report.txt")
        cross = net.messages_sent - m0
        # the same read issued directly at zone B's server uses fewer msgs
        direct = SrbClient(b, "b-host", "b-srb")
        m0 = net.messages_sent
        direct.get("/npaci-zone/pub/report.txt")
        local = net.messages_sent - m0
        assert cross == local + 2      # the A->B forwarding round trip


class TestCrossZoneBoundaries:
    def test_writes_refused(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "sekar@sdsc", "own")
        with pytest.raises(UnsupportedOperation):
            user_a.ingest("/npaci-zone/pub/new.txt", b"x")
        with pytest.raises(UnsupportedOperation):
            user_a.put("/npaci-zone/pub/report.txt", b"x")
        with pytest.raises(UnsupportedOperation):
            user_a.delete("/npaci-zone/pub/report.txt")
        with pytest.raises(UnsupportedOperation):
            user_a.mkcoll("/npaci-zone/pub/sub")

    def test_connecting_to_peer_server_allows_writes(self, zones):
        # the documented path for cross-zone writes: connect there
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "sekar@sdsc", "write")
        direct = SrbClient(b, "a-host", "b-srb")
        direct.ticket = user_a.ticket           # same SSO ticket, trusted
        direct.username = user_a.username
        direct.ingest("/npaci-zone/pub/from-a.txt", b"written directly")
        assert direct.get("/npaci-zone/pub/from-a.txt") == b"written directly"

    def test_distrust_revokes_access(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "*", "read")
        b.authority.distrust_zone("sdsc-zone")
        with pytest.raises(InvalidTicket):
            user_a.get("/npaci-zone/pub/report.txt")

    def test_unfederated_zone_path_stays_local(self, zones):
        a, b, admin_b, user_a = zones
        from repro.errors import NoSuchObject
        with pytest.raises(NoSuchObject):
            user_a.get("/unknown-zone/x")       # resolved (and missed) at A

    def test_audit_lands_in_serving_zone(self, zones):
        a, b, admin_b, user_a = zones
        admin_b.grant("/npaci-zone/pub", "*", "read")
        user_a.get("/npaci-zone/pub/report.txt")
        entries = [e for e in b.mcat.audit_query(action="get")
                   if e["principal"] == "sekar@sdsc"]
        assert len(entries) == 1                # zone B audited the access
        assert not [e for e in a.mcat.audit_query(action="get")
                    if e["principal"] == "sekar@sdsc"]
