"""End-to-end observability: one cross-server read, fully explained.

The curator on the laptop reads an object whose only replica lives on
caltech, via the MCAT server at sdsc.  The trace must show the causal
chain (client get -> server RPC -> storage driver read) with virtual
times that close against the clock, and the always-on metrics must agree
with the network's own counters.
"""

import pytest


@pytest.fixture
def remote_object(grid):
    path = f"{grid.home}/remote.dat"
    grid.curator.ingest(path, b"stellar" * 7000, resource="unix-caltech")
    return path


class TestTrace:
    def test_cross_server_read_span_tree(self, grid, remote_object):
        fed, curator = grid.fed, grid.curator
        t0 = fed.clock.now
        with fed.obs.tracer.trace("client.get", path=remote_object) as root:
            data = curator.get(remote_object)
        assert data == b"stellar" * 7000

        # the causal chain nests: client -> RPC -> server op -> driver
        rpc = root.find("rpc.call")
        assert rpc and rpc[0].attrs["method"] == "get"
        get_spans = root.find("srb.data.get")
        assert get_spans and get_spans[0].parent is rpc[0]
        reads = root.find("storage.read")
        assert reads and reads[0].attrs["driver"] == "unix-caltech"
        assert any(s.name == "srb.data.get" for s in _ancestors(reads[0]))
        assert root.find("net.transfer")   # wire hops appear too

        # virtual time closes: the root covers the clock delta exactly,
        # and its direct children account for all of it (the client does
        # no clocked work of its own)
        assert root.duration == pytest.approx(fed.clock.now - t0)
        assert sum(c.duration for c in root.children) == pytest.approx(
            root.duration)

    def test_trace_counters_match_metrics_delta(self, grid, remote_object):
        fed, curator = grid.fed, grid.curator
        before = fed.obs.metrics.snapshot()
        with fed.obs.tracer.trace("client.get") as root:
            curator.get(remote_object)
        delta = fed.obs.metrics.delta(before)
        m = fed.obs.metrics
        assert root.total("messages") == m.sum_matching(delta, "net.messages")
        assert root.total("bytes") == m.sum_matching(delta, "net.bytes")
        assert m.sum_matching(delta, "rpc.calls") == 1
        assert m.sum_matching(delta, "srb.ops") == 1


class TestMetricsAgreeWithNetwork:
    def test_totals_mirror_network_counters(self, grid, remote_object):
        fed = grid.fed
        grid.curator.get(remote_object)
        fed.network.set_down("caltech")
        from repro.errors import ReplicaUnavailable
        with pytest.raises(ReplicaUnavailable):
            grid.curator.get(remote_object)
        fed.network.set_up("caltech")

        m = fed.obs.metrics
        # every message the network counted — grid setup, reads, and the
        # failed attempts — has a labeled metric increment behind it
        assert m.total("net.messages") == fed.network.messages_sent
        assert m.total("net.bytes") == fed.network.bytes_sent
        assert (m.total("net.failed_attempts")
                == fed.network.failed_attempts > 0)
        assert m.total("rpc.calls") == fed.rpc.stats.calls
        assert m.total("rpc.failures") == fed.rpc.stats.failures


def _ancestors(span):
    while span.parent is not None:
        span = span.parent
        yield span
