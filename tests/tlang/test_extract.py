"""Unit tests for T-language extraction programs."""

import pytest

from repro.errors import TLangError
from repro.tlang.extract import ExtractionProgram, Triple


class TestParsing:
    def test_empty_program_rejected(self):
        with pytest.raises(TLangError):
            ExtractionProgram("# only comments\n\n")

    def test_bad_rule_rejected(self):
        with pytest.raises(TLangError):
            ExtractionProgram("FROB /x/ -> 'a' = 'b'")

    def test_bad_regex_rejected(self):
        with pytest.raises(TLangError):
            ExtractionProgram("EXTRACT /([unclosed/ -> 'a' = 'b'")

    def test_missing_equals_rejected(self):
        with pytest.raises(TLangError):
            ExtractionProgram("EXTRACT /x/ -> 'a' 'b'")

    def test_bad_expression_rejected(self):
        with pytest.raises(TLangError):
            ExtractionProgram("EXTRACT /x/ -> 'a' = unquoted")

    def test_comments_and_blanks_skipped(self):
        p = ExtractionProgram("# header\n\nEXTRACT /x/ -> 'k' = 'v'\n")
        assert len(p.rules) == 1


class TestExtraction:
    def test_whole_document_finditer(self):
        p = ExtractionProgram(r"EXTRACT /<t>(?P<v>\w+)<\/t>/ -> 'tag' = $v")
        triples = p.run("<t>a</t><t>b</t>")
        assert [t.value for t in triples] == ["a", "b"]

    def test_per_line_mode(self):
        p = ExtractionProgram(
            r"EXTRACT LINES /^(?P<k>\w+): (?P<v>.+)$/ -> $k = $v")
        triples = p.run("alpha: 1\nbeta: 2\n")
        assert triples == [Triple("alpha", "1"), Triple("beta", "2")]

    def test_per_line_one_match_per_line(self):
        p = ExtractionProgram(r"EXTRACT LINES /(?P<v>\d+)/ -> 'n' = $v")
        # two numbers on one line: LINES mode takes the first per line
        assert len(p.run("1 2\n3\n")) == 2

    def test_numbered_groups(self):
        p = ExtractionProgram(r"EXTRACT /(\w+)=(\w+)/ -> $1 = $2")
        assert p.run("key=value") == [Triple("key", "value")]

    def test_literal_concatenation(self):
        p = ExtractionProgram(
            r"EXTRACT /(?P<v>\d+)/ -> 'prefix-' + $v = 'val:' + $v")
        assert p.run("42") == [Triple("prefix-42", "val:42")]

    def test_units_clause(self):
        p = ExtractionProgram(
            r"EXTRACT /(?P<k>\w+)=(?P<v>[\d.]+)(?P<u>\w*)/ -> $k = $v UNITS $u")
        t = p.run("wingspan=1.2m")[0]
        assert (t.attr, t.value, t.units) == ("wingspan", "1.2", "m")

    def test_empty_units_become_none(self):
        p = ExtractionProgram(
            r"EXTRACT /(?P<k>\w+)=(?P<v>\d+)/ -> $k = $v UNITS ''")
        assert p.run("a=1")[0].units is None

    def test_empty_attr_skipped(self):
        p = ExtractionProgram(r"EXTRACT /(?P<k>\w*)x/ -> $k = 'v'")
        assert p.run("x") == []     # group matched empty -> attr empty

    def test_values_stripped(self):
        p = ExtractionProgram(r"EXTRACT LINES /^(?P<k>\w+)= (?P<v>.*)$/ -> $k = $v")
        assert p.run("a=  spaced  ")[0].value == "spaced"

    def test_bytes_input_decoded(self):
        p = ExtractionProgram(r"EXTRACT /(?P<v>\w+)/ -> 'w' = $v")
        assert p.run(b"hello")[0].value == "hello"

    def test_unknown_group_raises(self):
        p = ExtractionProgram(r"EXTRACT /x/ -> 'k' = $nope")
        with pytest.raises(TLangError):
            p.run("x")

    def test_multiple_rules_concatenate(self):
        p = ExtractionProgram(
            "EXTRACT /a/ -> 'saw' = 'a'\nEXTRACT /b/ -> 'saw' = 'b'\n")
        assert [t.value for t in p.run("ab")] == ["a", "b"]

    def test_escaped_slash_in_regex(self):
        p = ExtractionProgram(r"EXTRACT /(?P<v>\w+)\/(?P<w>\w+)/ -> $v = $w")
        assert p.run("a/b") == [Triple("a", "b")]
