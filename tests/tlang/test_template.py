"""Unit tests for T-language style sheets and the three built-ins."""

import re

import pytest

from repro.errors import TLangError
from repro.tlang.template import BUILTIN_TEMPLATES, StyleSheet, builtin


class TestParsing:
    def test_unknown_directive(self):
        with pytest.raises(TLangError):
            StyleSheet("FROBNICATE 'x'")

    def test_duplicate_directive(self):
        with pytest.raises(TLangError):
            StyleSheet("HEADER 'a'\nHEADER 'b'")

    def test_unquoted_arg_rejected(self):
        with pytest.raises(TLangError):
            StyleSheet("HEADER unquoted")

    def test_bad_escape_mode(self):
        with pytest.raises(TLangError):
            StyleSheet("ESCAPE rot13")

    def test_groupby_needs_number(self):
        with pytest.raises(TLangError):
            StyleSheet("GROUPBY first")

    def test_groupby_one_based(self):
        with pytest.raises(TLangError):
            StyleSheet("GROUPBY 0")

    def test_escaped_quote_in_string(self):
        s = StyleSheet(r"HEADER 'it\'s'")
        assert s.header == "it's"

    def test_newline_escape(self):
        s = StyleSheet(r"ROW 'a\nb'")
        assert s.row == "a\nb"


class TestRendering:
    def test_flat_rendering(self):
        s = StyleSheet("HEADER '['\nROW '('\nCELL '${value},'\n"
                       "ROWEND ')'\nFOOTER ']'")
        assert s.render(["a"], [(1,), (2,)]) == "[(1,)(2,)]"

    def test_colhead_substitution(self):
        s = StyleSheet("COLHEAD '<${name}>'")
        assert s.render(["x", "y"], []) == "<x><y>"

    def test_colN_substitution(self):
        s = StyleSheet("ROW '${col2}/${col1};'")
        assert s.render(["a", "b"], [(1, 2)]) == "2/1;"

    def test_null_renders_empty(self):
        s = StyleSheet("CELL '[${value}]'")
        assert s.render(["a"], [(None,)]) == "[]"

    def test_unknown_substitution_raises(self):
        s = StyleSheet("CELL '${nope}'")
        with pytest.raises(TLangError):
            s.render(["a"], [(1,)])

    def test_out_of_range_col_raises(self):
        s = StyleSheet("ROW '${col9}'")
        with pytest.raises(TLangError):
            s.render(["a"], [(1,)])

    def test_html_escaping(self):
        s = StyleSheet("ESCAPE html\nCELL '${value}'")
        assert s.render(["a"], [("<b>&",)]) == "&lt;b&gt;&amp;"

    def test_no_escaping_mode(self):
        s = StyleSheet("CELL '${value}'")
        assert s.render(["a"], [("<b>",)]) == "<b>"

    def test_groupby_clusters_consecutive(self):
        s = StyleSheet("GROUPBY 1\nROW '[${col1}:'\nCELL '${value}'\n"
                       "ROWEND ']'")
        out = s.render(["g", "v"], [("a", 1), ("a", 2), ("b", 3)])
        assert out == "[a:12][b:3]"

    def test_groupby_out_of_range(self):
        s = StyleSheet("GROUPBY 5\nROW 'x'")
        with pytest.raises(TLangError):
            s.render(["a"], [(1,)])

    def test_empty_rows(self):
        s = StyleSheet("HEADER 'h'\nFOOTER 'f'")
        assert s.render(["a"], []) == "hf"


class TestBuiltins:
    def test_three_builtins_exist(self):
        assert set(BUILTIN_TEMPLATES) == {"HTMLREL", "HTMLNEST", "XMLREL"}

    def test_lookup_case_insensitive(self):
        assert builtin("htmlrel").escape == "html"

    def test_unknown_builtin(self):
        with pytest.raises(TLangError):
            builtin("JSONREL")

    def test_htmlrel_is_relational_table(self):
        out = builtin("HTMLREL").render(["name", "mag"],
                                        [("Vega", 0.03), ("Sirius", -1.46)])
        assert out.count("<tr>") == 3          # header + 2 rows
        assert "<th>name</th>" in out
        assert "<td>Vega</td>" in out

    def test_htmlrel_escapes_content(self):
        out = builtin("HTMLREL").render(["x"], [("<script>",)])
        assert "<script>" not in out

    def test_htmlnest_groups_by_first_column(self):
        out = builtin("HTMLNEST").render(
            ["grp", "v"], [("a", 1), ("a", 2), ("b", 3)])
        assert out.count("<td>a</td>") == 1    # group key once
        assert "<table>" in out

    def test_xmlrel_well_formed(self):
        out = builtin("XMLREL").render(["x", "y"], [("1&2", None)])
        assert out.startswith("<?xml")
        assert "&amp;" in out
        # crude well-formedness: every open has a close
        for tag in ("resultset", "row", "field"):
            assert out.count(f"<{tag}>") == out.count(f"</{tag}>")

    def test_xmlrel_parses_with_stdlib(self):
        import xml.etree.ElementTree as ET
        out = builtin("XMLREL").render(["a"], [("v1",), ("v2",)])
        root = ET.fromstring(out)
        assert root.tag == "resultset"
        assert [f.text for f in root.iter("field")] == ["v1", "v2"]


class TestEscapingProperties:
    from hypothesis import given, strategies as st

    @given(st.text(max_size=40))
    def test_html_escaped_output_has_no_raw_specials(self, value):
        from hypothesis import assume
        s = StyleSheet("ESCAPE html\nCELL '${value}'")
        out = s.render(["c"], [(value,)])
        import re as _re
        # no raw < > & outside entities survive escaping
        stripped = _re.sub(r"&(lt|gt|amp|quot|#x27);", "", out)
        assert "<" not in stripped and ">" not in stripped
        assert "&" not in stripped

    @given(st.lists(st.text(max_size=20), min_size=1, max_size=5))
    def test_xmlrel_always_parses(self, values):
        import xml.etree.ElementTree as ET
        out = builtin("XMLREL").render(["v"], [(v,) for v in values])
        root = ET.fromstring(out)
        fields = [f.text if f.text is not None else "" for f in
                  root.iter("field")]
        assert len(fields) == len(values)

    @given(st.lists(st.tuples(st.text(max_size=10), st.integers(-5, 5)),
                    min_size=0, max_size=8))
    def test_htmlrel_row_count_matches_input(self, rows):
        out = builtin("HTMLREL").render(["a", "b"], rows)
        assert out.count("<tr>") == len(rows) + 1
