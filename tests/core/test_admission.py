"""End-to-end admission control through the Federation knobs.

``Federation(workers=..., queue_depth=...)`` installs a worker-pool
station on every host that runs an SRB server; these tests drive it
through the real client/server/dispatch stack — including a cross-zone
forward landing on a saturated peer.
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import ServerBusy
from repro.net.simnet import Network

COLL = "/demozone/bench"
OBJ = f"{COLL}/obj.dat"


def build(**knobs):
    fed = Federation(zone="demozone", **knobs)
    fed.add_host("hc")
    fed.add_host("hs")
    fed.add_server("s0", "hs", mcat=True)
    fed.add_fs_resource("fs0", "hs")
    fed.default_resource = "fs0"
    fed.bootstrap_admin()
    client = SrbClient(fed, "hc", "s0", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll(COLL)
    client.ingest(OBJ, b"payload")
    return fed, client


class TestFederationKnobs:
    def test_default_installs_no_station(self):
        fed, client = build()
        assert fed.network.station("hs") is None
        stats = fed.stats()
        assert stats["workers"] is None
        assert stats["queue_depth"] is None
        assert stats["requests_admitted"] == 0
        assert stats["requests_shed"] == 0

    def test_workers_knob_installs_station_on_server_hosts(self):
        fed, client = build(workers=2, queue_depth=4)
        st = fed.network.station("hs")
        assert st is not None
        assert st.workers == 2 and st.queue_depth == 4
        # the client host runs no server: no station there
        assert fed.network.station("hc") is None
        # every op so far went through admission
        stats = fed.stats()
        assert stats["requests_admitted"] > 0
        assert stats["requests_shed"] == 0

    def test_knobs_normalized(self):
        fed = Federation(zone="z", workers=0, queue_depth=-3)
        assert fed.workers == 1
        assert fed.queue_depth == 0


class TestEndToEndShedding:
    def test_second_concurrent_get_is_shed(self):
        fed, client = build(workers=1, queue_depth=0)
        t = fed.clock.now
        with fed.rpc.open_loop(t):
            client.get(OBJ)
        assert fed.rpc.last_timing.ok
        with pytest.raises(ServerBusy) as exc:
            with fed.rpc.open_loop(t):
                client.get(OBJ)
        assert exc.value.host == "hs"
        assert exc.value.retry_after > 0.0
        stats = fed.stats()
        assert stats["requests_shed"] == 1
        m = fed.obs.metrics
        assert m.get("srb.admission.shed", host="hs",
                     service="srb:s0", method="get") == 1
        hist = m.histogram("srb.admission.retry_after_s", host="hs")
        assert hist is not None and hist.count == 1

    def test_two_workers_absorb_two_concurrent_gets(self):
        fed, client = build(workers=2, queue_depth=0)
        t = fed.clock.now
        for _ in range(2):
            with fed.rpc.open_loop(t):
                client.get(OBJ)
            assert fed.rpc.last_timing.ok
            assert fed.rpc.last_timing.wait == 0.0
        with pytest.raises(ServerBusy):
            with fed.rpc.open_loop(t):
                client.get(OBJ)

    def test_unbounded_queue_never_sheds(self):
        fed, client = build(workers=1)     # queue_depth=None
        t = fed.clock.now
        waits = []
        for _ in range(5):
            with fed.rpc.open_loop(t):
                client.get(OBJ)
            waits.append(fed.rpc.last_timing.wait)
        assert fed.stats()["requests_shed"] == 0
        # each successive request queues behind all earlier ones
        assert waits == sorted(waits)
        assert waits[0] == 0.0 and waits[-1] > 0.0


class TestCrossZoneForwardShed:
    @pytest.fixture
    def zones(self):
        """Zone A plain; zone B with a bounded single-worker pool."""
        net = Network()
        a = Federation(zone="za", network=net)
        b = Federation(zone="zb", network=net, workers=1, queue_depth=0)
        a.add_host("a-host")
        b.add_host("b-host")
        a.add_server("a-srb", "a-host", mcat=True)
        b.add_server("b-srb", "b-host", mcat=True)
        a.add_fs_resource("a-disk", "a-host")
        b.add_fs_resource("b-disk", "b-host")
        a.default_resource = "a-disk"
        b.default_resource = "b-disk"
        a.bootstrap_admin()
        b.bootstrap_admin("admin-b@npaci", "pw-b")
        a.federate_with(b)
        admin_b = SrbClient(b, "b-host", "b-srb", "admin-b@npaci", "pw-b")
        admin_b.login()
        admin_b.mkcoll("/zb/pub")
        admin_b.ingest("/zb/pub/report.txt", b"inter-zone bytes")
        admin_b.grant("/zb/pub/report.txt", "srbadmin@sdsc", "read")
        user_a = SrbClient(a, "a-host", "a-srb", "srbadmin@sdsc", "hunter2")
        user_a.login()
        return net, a, b, user_a

    def test_forward_to_saturated_peer_surfaces_busy(self, zones):
        """A cross-zone read forwarded to a peer whose pool is full:
        the peer sheds, the forwarding server counts the failure in its
        dispatch pipeline (``srb.errors``), and the caller sees the
        typed ``ServerBusy`` with the peer's retry hint."""
        net, a, b, user_a = zones
        # healthy forward first: trust + grant are in place
        assert user_a.get("/zb/pub/report.txt") == b"inter-zone bytes"

        # saturate the peer's only worker far into the future
        st = net.station("b-host")
        adm = st.admit(net.clock.now)
        st.complete(adm, net.clock.now + 100.0)

        with pytest.raises(ServerBusy) as exc:
            user_a.get("/zb/pub/report.txt")
        assert exc.value.host == "b-host"
        assert exc.value.retry_after == pytest.approx(100.0, rel=0.01)
        m = net.obs.metrics
        # shed accounted at the shedding host ...
        assert m.get("srb.admission.shed", host="b-host",
                     service="srb:b-srb", method="get") == 1
        # ... and the forwarding server's dispatch pipeline labels the
        # failure like any other op error
        assert m.get("srb.errors", server="a-srb", op="get",
                     error="ServerBusy") == 1
