"""Unit tests for locks, pins and checkout/checkin."""

import pytest

from repro.auth.users import Principal
from repro.core.locking import LockManager
from repro.errors import (
    AlreadyCheckedOut,
    LockConflict,
    LockError,
    NotCheckedOut,
)
from repro.mcat import Mcat
from repro.util.clock import SimClock

SEKAR = Principal.parse("sekar@sdsc")
MOORE = Principal.parse("moore@sdsc")


@pytest.fixture
def env():
    clock = SimClock()
    mcat = Mcat(clock=None)
    mcat.create_collection("/demozone/c", str(SEKAR), now=0.0)
    oid = mcat.create_object("/demozone/c/x", "data", str(SEKAR), now=0.0)
    return LockManager(mcat, clock), oid, clock


class TestSharedLocks:
    def test_shared_allows_reads_by_others(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        lm.check_read(oid, MOORE)            # no raise

    def test_shared_blocks_writes_by_others(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        with pytest.raises(LockConflict):
            lm.check_write(oid, MOORE)

    def test_shared_allows_holder_writes(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        lm.check_write(oid, SEKAR)

    def test_two_shared_locks_coexist(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        lm.lock(oid, MOORE, "shared")
        assert len(lm.locks_on(oid)) == 2


class TestExclusiveLocks:
    def test_exclusive_blocks_reads(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "exclusive")
        with pytest.raises(LockConflict):
            lm.check_read(oid, MOORE)

    def test_exclusive_allows_holder(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "exclusive")
        lm.check_read(oid, SEKAR)
        lm.check_write(oid, SEKAR)

    def test_exclusive_over_foreign_shared_rejected(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        with pytest.raises(LockConflict):
            lm.lock(oid, MOORE, "exclusive")

    def test_shared_over_foreign_exclusive_rejected(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "exclusive")
        with pytest.raises(LockConflict):
            lm.lock(oid, MOORE, "shared")

    def test_unknown_type_rejected(self, env):
        lm, oid, _ = env
        with pytest.raises(LockError):
            lm.lock(oid, SEKAR, "advisory")


class TestExpiryAndUnlock:
    def test_lock_expires(self, env):
        lm, oid, clock = env
        lm.lock(oid, SEKAR, "exclusive", lifetime_s=100.0)
        clock.advance(101.0)
        lm.check_write(oid, MOORE)           # expired -> no conflict
        assert lm.locks_on(oid) == []

    def test_unlock_releases(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "exclusive")
        assert lm.unlock(oid, SEKAR) == 1
        lm.check_write(oid, MOORE)

    def test_unlock_only_own_locks(self, env):
        lm, oid, _ = env
        lm.lock(oid, SEKAR, "shared")
        assert lm.unlock(oid, MOORE) == 0
        assert len(lm.locks_on(oid)) == 1


class TestPins:
    def test_pin_and_query(self, env):
        lm, oid, _ = env
        lm.pin(oid, "cache-res", SEKAR)
        assert lm.is_pinned(oid, "cache-res")
        assert not lm.is_pinned(oid, "other-res")
        assert lm.is_pinned(oid)             # any resource

    def test_pin_expires(self, env):
        lm, oid, clock = env
        lm.pin(oid, "cache-res", SEKAR, lifetime_s=10.0)
        clock.advance(11.0)
        assert not lm.is_pinned(oid, "cache-res")

    def test_unpin(self, env):
        lm, oid, _ = env
        lm.pin(oid, "cache-res", SEKAR)
        assert lm.unpin(oid, "cache-res", SEKAR) == 1
        assert not lm.is_pinned(oid)

    def test_unpin_wrong_holder_noop(self, env):
        lm, oid, _ = env
        lm.pin(oid, "cache-res", SEKAR)
        assert lm.unpin(oid, "cache-res", MOORE) == 0
        assert lm.is_pinned(oid)


class TestCheckoutCheckin:
    def test_checkout_blocks_other_writers(self, env):
        lm, oid, _ = env
        lm.checkout(oid, SEKAR)
        with pytest.raises(LockConflict):
            lm.check_write(oid, MOORE)
        lm.check_write(oid, SEKAR)

    def test_double_checkout_rejected(self, env):
        lm, oid, _ = env
        lm.checkout(oid, SEKAR)
        with pytest.raises(AlreadyCheckedOut):
            lm.checkout(oid, MOORE)

    def test_checkin_requires_checkout(self, env):
        lm, oid, _ = env
        with pytest.raises(NotCheckedOut):
            lm.checkin(oid, SEKAR)

    def test_checkin_by_other_user_rejected(self, env):
        lm, oid, _ = env
        lm.checkout(oid, SEKAR)
        with pytest.raises(LockConflict):
            lm.checkin(oid, MOORE)

    def test_checkin_bumps_version(self, env):
        lm, oid, _ = env
        lm.checkout(oid, SEKAR)
        assert lm.checkin(oid, SEKAR) == 2
        assert lm.mcat.get_object_by_id(oid)["version"] == 2
        assert lm.mcat.get_object_by_id(oid)["checked_out_by"] is None

    def test_version_records(self, env):
        lm, oid, _ = env
        lm.checkout(oid, SEKAR)
        lm.record_version(oid, "res", "/old/path", 42, SEKAR)
        lm.checkin(oid, SEKAR)
        versions = lm.versions_of(oid)
        assert len(versions) == 1
        assert versions[0]["version_num"] == 1
        assert versions[0]["physical_path"] == "/old/path"

    def test_repeated_cycles_distinct_versions(self, env):
        lm, oid, _ = env
        for expected in (2, 3, 4):
            lm.checkout(oid, SEKAR)
            lm.record_version(oid, "res", f"/v{expected - 1}", 1, SEKAR)
            assert lm.checkin(oid, SEKAR) == expected
        nums = [v["version_num"] for v in lm.versions_of(oid)]
        assert nums == [1, 2, 3]
