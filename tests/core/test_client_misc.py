"""Tests for SrbClient plumbing: connection management, logout, errors."""

import pytest

from repro.core import SrbClient
from repro.errors import AuthError, HostUnreachable, NoSuchServer


class TestConnectionManagement:
    def test_unknown_client_host_rejected(self, grid):
        with pytest.raises(HostUnreachable):
            SrbClient(grid.fed, "ghost-host", "srb1")

    def test_unknown_server_rejected(self, grid):
        with pytest.raises(NoSuchServer):
            SrbClient(grid.fed, "laptop", "ghost-srb")

    def test_connect_to_unknown_server_rejected(self, grid):
        with pytest.raises(NoSuchServer):
            grid.curator.connect("ghost-srb")
        # the old connection survives the failed switch
        assert grid.curator.ls(grid.home)

    def test_login_requires_credentials(self, grid):
        anon = SrbClient(grid.fed, "laptop", "srb1")
        with pytest.raises(AuthError):
            anon.login()

    def test_login_with_explicit_credentials(self, grid):
        anon = SrbClient(grid.fed, "laptop", "srb1")
        anon.login("sekar@sdsc", "secret")
        assert anon.username == "sekar@sdsc"
        assert anon.ticket is not None

    def test_logout_drops_ticket(self, grid):
        grid.curator.logout()
        assert grid.curator.ticket is None
        # now treated as public
        from repro.errors import AccessDenied
        with pytest.raises(AccessDenied):
            grid.curator.ls(grid.home)
        grid.curator.login()               # restore for other assertions
        assert grid.curator.ls(grid.home)

    def test_relogin_reissues_ticket(self, grid):
        first = grid.curator.ticket
        grid.curator.login()
        assert grid.curator.ticket is not first


class TestRpcPayloads:
    def test_conditions_cross_the_wire(self, grid):
        """Condition dataclasses serialize through the RPC size model."""
        from repro.mcat import Condition, DisplayOnly
        grid.curator.ingest(f"{grid.home}/w.txt", b"x")
        grid.curator.add_metadata(f"{grid.home}/w.txt", "k", "v")
        r = grid.curator.query(grid.home,
                               [Condition("k", "=", "v"), DisplayOnly("k")])
        assert len(r.rows) == 1

    def test_large_payload_costs_more_wire_time(self, grid):
        clock = grid.fed.clock
        t0 = clock.now
        grid.curator.ingest(f"{grid.home}/small.bin", b"x" * 100)
        small = clock.now - t0
        t0 = clock.now
        grid.curator.ingest(f"{grid.home}/large.bin", b"x" * 2_000_000)
        large = clock.now - t0
        assert large > small * 3

    def test_none_ticket_travels(self, grid):
        anon = SrbClient(grid.fed, "laptop", "srb1")
        grid.curator.ingest(f"{grid.home}/open.bin", b"x")
        grid.curator.grant(f"{grid.home}/open.bin", "*", "read")
        assert anon.get(f"{grid.home}/open.bin") == b"x"
