"""Tests for in-place container member updates and compaction."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Federation, SrbClient


@pytest.fixture
def env():
    fed = Federation(zone="demozone")
    fed.add_host("h0")
    fed.add_host("h1")
    fed.add_server("s0", "h0", mcat=True)
    fed.add_fs_resource("cache", "h0", is_cache=True)
    fed.add_archive_resource("tape", "h1")
    fed.add_logical_resource("cres", ["cache", "tape"])
    fed.default_resource = "cache"
    fed.bootstrap_admin()
    client = SrbClient(fed, "h0", "s0", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/demozone/d")
    client.create_container("/demozone/d/box", "cres")
    return fed, client


def fill(client, blobs):
    for i, blob in enumerate(blobs):
        client.ingest(f"/demozone/d/m{i}", blob, container="/demozone/d/box")


class TestReplaceMember:
    def test_update_visible(self, env):
        fed, client = env
        fill(client, [b"aaa", b"bbb"])
        client.put("/demozone/d/m0", b"AAAA")
        assert client.get("/demozone/d/m0") == b"AAAA"
        assert client.get("/demozone/d/m1") == b"bbb"

    def test_size_change_supported(self, env):
        fed, client = env
        fill(client, [b"short"])
        client.put("/demozone/d/m0", b"much longer replacement content")
        assert client.get("/demozone/d/m0") == \
            b"much longer replacement content"
        assert client.stat("/demozone/d/m0")["size"] == 31

    def test_update_appends_garbage(self, env):
        fed, client = env
        fill(client, [b"12345"])
        assert client.container_garbage("/demozone/d/box") == 0
        client.put("/demozone/d/m0", b"67890")
        assert client.container_garbage("/demozone/d/box") == 5

    def test_repeated_updates_accumulate_garbage(self, env):
        fed, client = env
        fill(client, [b"x" * 10])
        for _ in range(4):
            client.put("/demozone/d/m0", b"y" * 10)
        assert client.container_garbage("/demozone/d/box") == 40

    def test_update_marks_archive_dirty(self, env):
        fed, client = env
        fill(client, [b"v1"])
        client.sync_container("/demozone/d/box")
        client.put("/demozone/d/m0", b"v2")
        reps = {r["resource"]: r["is_dirty"]
                for r in client.stat("/demozone/d/box")["replicas"]}
        assert reps["tape"] is True
        client.sync_container("/demozone/d/box")
        # after sync the archive copy serves the update too
        fed.network.set_down("h0")
        member = fed.mcat.replicas(
            fed.mcat.get_object("/demozone/d/m0")["oid"])[0]
        assert fed.containers.read_member(member) == b"v2"


class TestCompact:
    def test_compact_reclaims_garbage(self, env):
        fed, client = env
        fill(client, [b"aaaa", b"bbbb"])
        client.put("/demozone/d/m0", b"AA")
        reclaimed = client.compact_container("/demozone/d/box")
        assert reclaimed == 4                 # the dead "aaaa" slice
        assert client.container_garbage("/demozone/d/box") == 0

    def test_members_intact_after_compact(self, env):
        fed, client = env
        fill(client, [b"one", b"two", b"three"])
        client.put("/demozone/d/m1", b"TWO-NEW")
        client.compact_container("/demozone/d/box")
        assert client.get("/demozone/d/m0") == b"one"
        assert client.get("/demozone/d/m1") == b"TWO-NEW"
        assert client.get("/demozone/d/m2") == b"three"

    def test_compact_tightens_layout(self, env):
        fed, client = env
        fill(client, [b"aa", b"bb"])
        client.put("/demozone/d/m0", b"cc")
        client.compact_container("/demozone/d/box")
        members = fed.containers.members(
            fed.mcat.get_object("/demozone/d/box")["oid"])
        offsets = [(m["offset"], m["size"]) for m in members]
        # gap-free: offsets tile [0, total)
        cursor = 0
        for offset, size in offsets:
            assert offset == cursor
            cursor += size
        assert client.stat("/demozone/d/box")["size"] == cursor

    def test_compact_noop_when_clean(self, env):
        fed, client = env
        fill(client, [b"abc"])
        assert client.compact_container("/demozone/d/box") == 0

    def test_compact_requires_write(self, env):
        fed, client = env
        fill(client, [b"x"])
        fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(fed, "h0", "s0", "guest@sdsc", "pw")
        guest.login()
        from repro.errors import AccessDenied
        with pytest.raises(AccessDenied):
            guest.compact_container("/demozone/d/box")


class TestPropertyUpdateCompact:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.binary(min_size=1, max_size=24), min_size=1,
                    max_size=6),
           st.lists(st.tuples(st.integers(0, 5),
                              st.binary(min_size=1, max_size=24)),
                    max_size=8),
           st.booleans())
    def test_updates_then_optional_compact_preserve_contents(
            self, blobs, updates, do_compact):
        fed = Federation(zone="z")
        fed.add_host("h")
        fed.add_server("s", "h", mcat=True)
        fed.add_fs_resource("r", "h")
        fed.add_logical_resource("lr", ["r"])
        fed.bootstrap_admin()
        client = SrbClient(fed, "h", "s", "srbadmin@sdsc", "hunter2")
        client.login()
        client.mkcoll("/z/d")
        client.create_container("/z/d/box", "lr")
        state = {}
        for i, blob in enumerate(blobs):
            client.ingest(f"/z/d/m{i}", blob, container="/z/d/box")
            state[i] = blob
        for idx, new_blob in updates:
            if idx in state:
                client.put(f"/z/d/m{idx}", new_blob)
                state[idx] = new_blob
        if do_compact:
            client.compact_container("/z/d/box")
            assert client.container_garbage("/z/d/box") == 0
        for i, blob in state.items():
            assert client.get(f"/z/d/m{i}") == blob
