"""Tests for the declarative RPC dispatch pipeline (repro.core.dispatch).

Covers the registry invariants (every op declared exactly once, bad
declarations fail at import time), the uniform ``srb.ops`` accounting
(every registered op increments the counter exactly once per call), the
declarative audit coverage (every mutation audits; denied mutations
audit ``ok=False``), and the narrowed RPC surface (only registered ops
are remotely callable).
"""

from __future__ import annotations

import inspect
import pathlib
import subprocess
import sys

import pytest

from repro.core.dispatch import Dispatcher, rpc_op
from repro.errors import AccessDenied, RpcError, SrbError

#: The six ops that take no subject path and therefore never zone-check.
UNSCOPED_OPS = {"auth_challenge", "auth_login", "bulk_ingest", "bulk_get",
                "bulk_query_metadata", "audit_log"}


class TestDeclarations:
    def test_bad_declarations_fail_at_import_time(self):
        with pytest.raises(ValueError, match="forwardable requires"):
            rpc_op("x", forwardable=True)
        with pytest.raises(ValueError, match="read-only"):
            rpc_op("x", scope_arg="path", forwardable=True, write=True)
        with pytest.raises(ValueError, match="write requires scope_arg"):
            rpc_op("x", write=True)
        with pytest.raises(ValueError, match="exclusive"):
            rpc_op("x", audit="a", detail="d", detail_arg="d2")
        with pytest.raises(ValueError, match="require audit="):
            rpc_op("x", detail_arg="d")

    def test_duplicate_op_name_rejected(self):
        class Clashing:
            plane = "p"

            @rpc_op("dup")
            def one(self, ctx):
                pass

            @rpc_op("dup")
            def two(self, ctx):
                pass

        dispatcher = Dispatcher(None)
        with pytest.raises(SrbError, match="duplicate rpc op"):
            dispatcher.register_service(Clashing())


class TestRegistryInvariants:
    def test_every_scoped_op_is_forwardable_or_write(self, fed):
        srv = fed.server("srb1")
        for spec in srv.dispatch.specs():
            if spec.scope_arg is None:
                assert spec.name in UNSCOPED_OPS, \
                    f"{spec.name} is unscoped but not in the known set"
            else:
                assert spec.forwardable or spec.write, \
                    f"{spec.name} has a scope but no zone policy"

    def test_every_write_declares_an_audit_action(self, fed):
        srv = fed.server("srb1")
        for spec in srv.dispatch.specs():
            if spec.write:
                assert spec.audit, f"mutation {spec.name} is not audited"

    def test_planes_cover_the_surface(self, fed):
        srv = fed.server("srb1")
        by_plane = {}
        for spec in srv.dispatch.specs():
            by_plane.setdefault(spec.plane, []).append(spec.name)
        assert set(by_plane) == {"auth", "namespace", "data", "replica",
                                 "metadata"}
        assert len(srv.dispatch.names()) == sum(map(len, by_plane.values()))

    def test_facade_signatures_match_monolith(self, fed):
        srv = fed.server("srb1")
        params = list(inspect.signature(srv.get).parameters)
        assert params == ["ticket", "path", "replica_num", "args",
                         "sql_remainder", "stripes"]
        # the login handshake never took a ticket
        assert "ticket" not in inspect.signature(srv.auth_challenge).parameters

    def test_render_lists_every_op(self, fed):
        srv = fed.server("srb1")
        text = srv.dispatch.render()
        for name in srv.dispatch.names():
            assert name in text


def test_lint_dispatch_is_clean():
    """The contract linter CI runs must pass on the tree as committed."""
    root = pathlib.Path(__file__).resolve().parents[2]
    proc = subprocess.run(
        [sys.executable, str(root / "tools" / "lint_dispatch.py")],
        cwd=root, capture_output=True, text=True)
    assert proc.returncode == 0, proc.stdout + proc.stderr


class TestRpcSurface:
    def test_internal_helpers_not_remotely_callable(self, fed):
        for method in ("_auth", "_audit", "_mcat_hop", "dispatch", "mcat",
                       "planes", "ops_served"):
            with pytest.raises(RpcError, match="has no method"):
                fed.rpc.call("laptop", "sdsc", "srb:srb1", method)

    def test_registered_ops_remotely_callable(self, fed):
        out = fed.rpc.call("laptop", "sdsc", "srb:srb1", "auth_challenge",
                           username="srbadmin@sdsc")
        assert "challenge" in out


class TestOpsCounterRegression:
    """Satellite: every registered RPC increments ``srb.ops`` exactly
    once per call — including failing calls (the span stage runs before
    the handler) — and the call map below must cover the whole registry,
    so adding an op without extending it fails loudly."""

    def test_every_op_increments_srb_ops_exactly_once(self, grid):
        fed = grid.fed
        srv = fed.server("srb1")
        T = grid.admin.ticket
        C = "/demozone/home/opscheck"
        F = C + "/f.txt"
        st = {}

        # --- setup: the fixtures each measured call operates on -------
        srv.mkcoll(T, C)
        srv.ingest(T, F, b"content-1")
        srv.mkcoll(T, C + "/doomed")          # rmcoll target
        srv.mkcoll(T, C + "/mig")             # migrate_collection target
        srv.ingest(T, C + "/mv.txt", b"m")    # move target
        srv.ingest(T, C + "/del.txt", b"d")   # delete target
        srv.ingest(T, C + "/lk.txt", b"l")    # lock/unlock target
        srv.ingest(T, C + "/co.txt", b"c")    # checkout/checkin target
        srv.ingest(T, C + "/rep.txt", b"r")   # replica-plane target
        srv.ingest(T, C + "/pm.txt", b"p")    # physical_move target
        st["mid"] = srv.add_metadata(T, F, "subject", "ops")

        def expect_error(fn):
            def run():
                with pytest.raises(SrbError):
                    fn()
            return run

        calls = [
            ("auth_challenge",
             lambda: srv.auth_challenge("srbadmin@sdsc")),
            ("auth_login", expect_error(
                lambda: srv.auth_login("srbadmin@sdsc", "nonce", "bad"))),
            ("mkcoll", lambda: srv.mkcoll(T, C + "/sub")),
            ("rmcoll", lambda: srv.rmcoll(T, C + "/doomed")),
            ("list_collection", lambda: srv.list_collection(T, C)),
            ("list_collection_page",
             lambda: srv.list_collection_page(T, C, limit=5)),
            ("stat", lambda: srv.stat(T, F)),
            ("move", lambda: srv.move(T, C + "/mv.txt", C + "/mv2.txt")),
            ("link", lambda: srv.link(T, F, C + "/lnk")),
            ("ingest", lambda: srv.ingest(T, C + "/new.txt", b"n")),
            ("bulk_ingest", lambda: srv.bulk_ingest(
                T, [{"path": C + "/b1.txt", "data": b"b"}])),
            ("bulk_get", lambda: srv.bulk_get(T, [F])),
            ("bulk_query_metadata",
             lambda: srv.bulk_query_metadata(T, [F])),
            ("register_file", lambda: srv.register_file(
                T, C + "/reg.txt", "unix-sdsc", "/outside/reg.txt")),
            ("register_directory", lambda: srv.register_directory(
                T, C + "/regdir", "unix-sdsc", "/outside/dir")),
            ("register_sql", expect_error(lambda: srv.register_sql(
                T, C + "/q.sql", "unix-sdsc", "SELECT 1"))),
            ("register_url", lambda: srv.register_url(
                T, C + "/u.url", "http://example.org/u")),
            ("register_method", lambda: srv.register_method(
                T, C + "/m.cmd", "srb1", "srbps", proxy_function=True)),
            ("get", lambda: srv.get(T, F)),
            ("put", lambda: srv.put(T, F, b"content-2")),
            ("delete", lambda: srv.delete(T, C + "/del.txt")),
            ("copy", lambda: srv.copy(T, F, C + "/copy.txt")),
            ("lock", lambda: srv.lock(T, C + "/lk.txt")),
            ("unlock", lambda: srv.unlock(T, C + "/lk.txt")),
            ("pin", lambda: srv.pin(T, F, "unix-sdsc")),
            ("unpin", lambda: srv.unpin(T, F, "unix-sdsc")),
            ("checkout", lambda: srv.checkout(T, C + "/co.txt")),
            ("checkin", lambda: srv.checkin(T, C + "/co.txt")),
            ("versions", lambda: srv.versions(T, C + "/co.txt")),
            ("get_version", lambda: srv.get_version(T, C + "/co.txt", 1)),
            ("create_container",
             lambda: srv.create_container(T, C + "/cont", "logrsrc1")),
            ("compact_container",
             lambda: srv.compact_container(T, C + "/cont")),
            ("container_garbage",
             lambda: srv.container_garbage(T, C + "/cont")),
            ("sync_container", lambda: srv.sync_container(T, C + "/cont")),
            ("replicate",
             lambda: srv.replicate(T, C + "/rep.txt", "unix-caltech")),
            ("register_replica", lambda: srv.register_replica(
                T, C + "/reg.txt", "/outside/reg-alt.txt")),
            ("ingest_replica", lambda: srv.ingest_replica(
                T, C + "/rep.txt", b"alt", "unix-caltech")),
            ("synchronize", lambda: srv.synchronize(T, C + "/rep.txt")),
            ("physical_move",
             lambda: srv.physical_move(T, C + "/pm.txt", "unix-caltech")),
            ("migrate_collection",
             lambda: srv.migrate_collection(T, C + "/mig", "unix-caltech")),
            ("verify_checksums", lambda: srv.verify_checksums(T, F)),
            ("add_metadata",
             lambda: srv.add_metadata(T, F, "color", "blue")),
            ("get_metadata", lambda: srv.get_metadata(T, F)),
            ("update_metadata",
             lambda: srv.update_metadata(T, F, st["mid"], "ops2")),
            ("delete_metadata",
             lambda: srv.delete_metadata(T, F, st["mid"])),
            ("copy_metadata",
             lambda: srv.copy_metadata(T, F, C + "/copy.txt")),
            ("extract_metadata", expect_error(
                lambda: srv.extract_metadata(T, F, "no-such-method"))),
            ("define_structural",
             lambda: srv.define_structural(T, C, "series")),
            ("structural_metadata", lambda: srv.structural_metadata(T, C)),
            ("add_annotation",
             lambda: srv.add_annotation(T, F, "comment", "checked")),
            ("annotations", lambda: srv.annotations(T, F)),
            ("query", lambda: srv.query(T, C, [])),
            ("query_page", lambda: srv.query_page(T, C, [], limit=5)),
            ("queryable_attrs", lambda: srv.queryable_attrs(T, C)),
            ("grant", lambda: srv.grant(T, F, "sekar@sdsc", "read")),
            ("revoke", lambda: srv.revoke(T, F, "sekar@sdsc")),
            ("audit_log", lambda: srv.audit_log(T)),
        ]

        # the map must cover the registry: a new op without a row here
        # is a test failure, not silent shrinkage
        assert {name for name, _fn in calls} == set(srv.dispatch.names())

        m = fed.obs.metrics
        for name, fn in calls:
            before = m.snapshot()
            fn()
            delta = m.delta(before)
            spec = srv.dispatch.get(name).spec
            assert m.sum_matching(delta, "srb.ops") == 1, \
                f"{name}: expected exactly one srb.ops increment"
            labeled = "srb.ops{op=%s,plane=%s,server=srb1}" % (name,
                                                               spec.plane)
            assert delta.get(labeled) == 1, \
                f"{name}: increment missing its op/plane labels"


class TestDeclarativeAudit:
    """Satellite: denied mutations audit ``ok=False``; denied reads do
    not, and the success audit stays the op's last catalog action."""

    # /demozone/vault sits outside the curator's granted subtree, so the
    # curator holds no permission on it at all
    @staticmethod
    def _vault(grid):
        grid.admin.mkcoll("/demozone/vault")
        grid.admin.ingest("/demozone/vault/secret.txt", b"s")
        return "/demozone/vault/secret.txt"

    def test_denied_mutation_audited_not_ok(self, grid):
        secret = self._vault(grid)
        with pytest.raises(AccessDenied):
            grid.curator.delete(secret)
        rows = grid.fed.mcat.audit_query(principal="sekar@sdsc",
                                         action="delete")
        assert len(rows) == 1
        assert rows[0]["ok"] is False
        assert rows[0]["target"] == secret

    def test_denied_read_is_not_audited(self, grid):
        # an unauthenticated caller holds no grants at all (the curator
        # has zone-wide read in the standard grid)
        secret = self._vault(grid)
        with pytest.raises(AccessDenied):
            grid.fed.server("srb1").get(None, secret)
        assert grid.fed.mcat.audit_query(action="get") == []

    def test_denied_grant_audited_not_ok(self, grid):
        secret = self._vault(grid)
        with pytest.raises(AccessDenied):
            grid.curator.grant(secret, "sekar@sdsc", "read")
        rows = grid.fed.mcat.audit_query(principal="sekar@sdsc",
                                         action="grant")
        assert [r["ok"] for r in rows] == [False]

    def test_successful_mutation_audits_once(self, grid):
        fed = grid.fed
        path = grid.home + "/a.txt"
        grid.curator.ingest(path, b"x")
        rows = fed.mcat.audit_query(action="ingest", target=path)
        assert len(rows) == 1
        assert rows[0]["ok"] is True
        assert rows[0]["principal"] == "sekar@sdsc"
