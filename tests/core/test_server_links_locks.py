"""Server tests: links, locks/pins through the API, checkout/checkin,
namespace listing, migration, federation behaviours."""

import pytest

from repro.core import SrbClient
from repro.errors import (
    AccessDenied,
    LockConflict,
    NoSuchObject,
    SessionExpired,
    InvalidTicket,
)


class TestLinks:
    def test_link_reads_target(self, curator, home):
        curator.ingest(f"{home}/orig.txt", b"data")
        curator.link(f"{home}/orig.txt", f"{home}/lnk.txt")
        assert curator.get(f"{home}/lnk.txt") == b"data"

    def test_link_to_link_collapses(self, curator, home):
        curator.ingest(f"{home}/o.txt", b"x")
        curator.link(f"{home}/o.txt", f"{home}/l1.txt")
        curator.link(f"{home}/l1.txt", f"{home}/l2.txt")
        # l2 points straight at the original, not at l1
        raw = curator.stat(f"{home}/l2.txt")
        assert raw["kind"] == "link"
        assert raw["target"] == f"{home}/o.txt"
        assert curator.get(f"{home}/l2.txt") == b"x"

    def test_multiple_links_allowed(self, curator, home):
        curator.ingest(f"{home}/m.txt", b"x")
        curator.link(f"{home}/m.txt", f"{home}/la.txt")
        curator.link(f"{home}/m.txt", f"{home}/lb.txt")
        assert curator.get(f"{home}/la.txt") == \
            curator.get(f"{home}/lb.txt") == b"x"

    def test_link_metadata_view_through(self, curator, home):
        curator.ingest(f"{home}/t.txt", b"x")
        curator.add_metadata(f"{home}/t.txt", "orig", "yes")
        curator.link(f"{home}/t.txt", f"{home}/tl.txt")
        curator.add_metadata(f"{home}/tl.txt", "linkonly", "yes")
        rows = curator.get_metadata(f"{home}/tl.txt")
        attrs = {r["attr"]: r.get("via_link", False) for r in rows}
        assert attrs == {"linkonly": False, "orig": True}

    def test_delete_link_unlinks_only(self, curator, home):
        curator.ingest(f"{home}/keep.txt", b"x")
        curator.link(f"{home}/keep.txt", f"{home}/kl.txt")
        curator.delete(f"{home}/kl.txt")
        assert curator.get(f"{home}/keep.txt") == b"x"
        with pytest.raises(NoSuchObject):
            curator.get(f"{home}/kl.txt")

    def test_link_inherits_target_acl_for_read(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/p.txt", b"x")
        grid.curator.link(f"{grid.home}/p.txt", f"{grid.home}/pl.txt")
        grid.curator.grant(f"{grid.home}/pl.txt", "guest@sdsc", "read")
        # link resolves to target; target not granted -> read via link
        # requires permission on the TARGET (access control of the original
        # object is inherited by the linked object)
        with pytest.raises(AccessDenied):
            guest.get(f"{grid.home}/pl.txt")
        grid.curator.grant(f"{grid.home}/p.txt", "guest@sdsc", "read")
        assert guest.get(f"{grid.home}/pl.txt") == b"x"

    def test_link_target_must_exist(self, curator, home):
        with pytest.raises(NoSuchObject):
            curator.link(f"{home}/ghost.txt", f"{home}/gl.txt")

    def test_link_collection(self, curator, home):
        curator.mkcoll(f"{home}/realcoll")
        curator.link(f"{home}/realcoll", f"{home}/colllink")
        obj = curator.stat(f"{home}/colllink")
        assert obj["kind"] == "link"
        assert obj["target"] == f"{home}/realcoll"


class TestLocksViaServer:
    @pytest.fixture
    def other(self, grid):
        grid.fed.add_user("moore@sdsc", "pw", role="contributor")
        c = SrbClient(grid.fed, "sdsc", "srb1", "moore@sdsc", "pw")
        c.login()
        return c

    def test_shared_lock_blocks_foreign_put(self, grid, other):
        grid.curator.ingest(f"{grid.home}/f.txt", b"v1")
        grid.curator.grant(f"{grid.home}/f.txt", "moore@sdsc", "write")
        grid.curator.lock(f"{grid.home}/f.txt", "shared")
        with pytest.raises(LockConflict):
            other.put(f"{grid.home}/f.txt", b"v2")
        assert other.get(f"{grid.home}/f.txt") == b"v1"   # reads allowed

    def test_exclusive_lock_blocks_reads(self, grid, other):
        grid.curator.ingest(f"{grid.home}/e.txt", b"v1")
        grid.curator.grant(f"{grid.home}/e.txt", "moore@sdsc", "write")
        grid.curator.lock(f"{grid.home}/e.txt", "exclusive")
        with pytest.raises(LockConflict):
            other.get(f"{grid.home}/e.txt")

    def test_unlock_restores_access(self, grid, other):
        grid.curator.ingest(f"{grid.home}/u.txt", b"v1")
        grid.curator.grant(f"{grid.home}/u.txt", "moore@sdsc", "write")
        grid.curator.lock(f"{grid.home}/u.txt", "exclusive")
        grid.curator.unlock(f"{grid.home}/u.txt")
        other.put(f"{grid.home}/u.txt", b"v2")

    def test_lock_expires_on_virtual_clock(self, grid, other):
        grid.curator.ingest(f"{grid.home}/x.txt", b"v1")
        grid.curator.grant(f"{grid.home}/x.txt", "moore@sdsc", "write")
        grid.curator.lock(f"{grid.home}/x.txt", "exclusive", lifetime_s=100.0)
        grid.fed.clock.advance(101.0)
        other.put(f"{grid.home}/x.txt", b"v2")   # expired

    def test_pin_protects_archive_cache(self, grid):
        grid.curator.ingest(f"{grid.home}/pin.txt", b"x",
                            resource="hpss-caltech")
        grid.curator.pin(f"{grid.home}/pin.txt", "hpss-caltech")
        drv = grid.fed.resources.physical("hpss-caltech").driver
        assert drv.purge_cache() == 0        # pinned file survives
        grid.curator.unpin(f"{grid.home}/pin.txt", "hpss-caltech")
        assert drv.purge_cache() == 1


class TestCheckoutCheckin:
    def test_versions_preserved(self, curator, home):
        curator.ingest(f"{home}/v.txt", b"version one")
        curator.checkout(f"{home}/v.txt")
        new_v = curator.checkin(f"{home}/v.txt", b"version two")
        assert new_v == 2
        assert curator.get(f"{home}/v.txt") == b"version two"
        assert curator.get_version(f"{home}/v.txt", 1) == b"version one"

    def test_version_listing(self, curator, home):
        curator.ingest(f"{home}/v2.txt", b"one")
        curator.checkout(f"{home}/v2.txt")
        curator.checkin(f"{home}/v2.txt", b"two")
        curator.checkout(f"{home}/v2.txt")
        curator.checkin(f"{home}/v2.txt", b"three")
        versions = curator.versions(f"{home}/v2.txt")
        assert [v["version_num"] for v in versions] == [1, 2]
        assert curator.stat(f"{home}/v2.txt")["version"] == 3

    def test_checkout_blocks_other_users(self, grid):
        grid.fed.add_user("moore@sdsc", "pw")
        other = SrbClient(grid.fed, "sdsc", "srb1", "moore@sdsc", "pw")
        other.login()
        grid.curator.ingest(f"{grid.home}/co.txt", b"x")
        grid.curator.grant(f"{grid.home}/co.txt", "moore@sdsc", "write")
        grid.curator.checkout(f"{grid.home}/co.txt")
        with pytest.raises(LockConflict):
            other.put(f"{grid.home}/co.txt", b"y")


class TestNamespaceListing:
    def test_ls_shows_kinds(self, grid):
        grid.curator.ingest(f"{grid.home}/d.txt", b"x",
                            data_type="ascii text")
        grid.fed.web.publish("http://x.org/u", b"c")
        grid.curator.register_url(f"{grid.home}/u", "http://x.org/u")
        grid.curator.mkcoll(f"{grid.home}/sub")
        listing = grid.curator.ls(grid.home)
        kinds = {o["name"]: o["kind"] for o in listing["objects"]}
        assert kinds == {"d.txt": "data", "u": "url"}
        assert listing["collections"] == [f"{grid.home}/sub"]

    def test_ls_hides_unreadable_objects(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/vis.txt", b"x")
        grid.curator.ingest(f"{grid.home}/hid.txt", b"x")
        grid.curator.grant(grid.home, "guest@sdsc", "read")
        # revoke nothing: both visible through collection read
        names = [o["name"] for o in guest.ls(grid.home)["objects"]]
        assert set(names) == {"vis.txt", "hid.txt"}

    def test_rmcoll_requires_empty(self, curator, home):
        curator.mkcoll(f"{home}/full")
        curator.ingest(f"{home}/full/x.txt", b"x")
        from repro.errors import NotEmpty
        with pytest.raises(NotEmpty):
            curator.rmcoll(f"{home}/full")
        curator.delete(f"{home}/full/x.txt")
        curator.rmcoll(f"{home}/full")


class TestMigration:
    def test_names_survive_migration(self, curator, home):
        curator.mkcoll(f"{home}/proj")
        for i in range(4):
            curator.ingest(f"{home}/proj/f{i}.dat", f"data{i}".encode())
        moved = curator.migrate_collection(f"{home}/proj", "unix-caltech")
        assert moved == 4
        for i in range(4):
            info = curator.stat(f"{home}/proj/f{i}.dat")
            assert info["replicas"][0]["resource"] == "unix-caltech"
            assert curator.get(f"{home}/proj/f{i}.dat") == f"data{i}".encode()

    def test_migration_skips_container_members(self, grid):
        grid.fed.add_logical_resource("cres", ["unix-sdsc"])
        grid.curator.mkcoll(f"{grid.home}/mixed")
        grid.curator.create_container(f"{grid.home}/mixed/c", "cres")
        grid.curator.ingest(f"{grid.home}/mixed/member", b"in-cont",
                            container=f"{grid.home}/mixed/c")
        grid.curator.ingest(f"{grid.home}/mixed/plain", b"plain")
        moved = grid.curator.migrate_collection(f"{grid.home}/mixed",
                                                "unix-caltech")
        assert moved == 1
        assert grid.curator.get(f"{grid.home}/mixed/member") == b"in-cont"


class TestFederationBehaviour:
    def test_any_server_reaches_any_data(self, grid):
        grid.curator.ingest(f"{grid.home}/fed.txt", b"x",
                            resource="unix-sdsc")
        grid.curator.connect("srb2")     # remote, non-MCAT server
        assert grid.curator.get(f"{grid.home}/fed.txt") == b"x"

    def test_remote_server_costs_more(self, grid):
        grid.curator.ingest(f"{grid.home}/cost.txt", b"x" * 100,
                            resource="unix-sdsc")
        clock = grid.fed.clock
        t0 = clock.now
        grid.curator.get(f"{grid.home}/cost.txt")
        local_cost = clock.now - t0
        grid.curator.connect("srb2")
        t0 = clock.now
        grid.curator.get(f"{grid.home}/cost.txt")
        remote_cost = clock.now - t0
        assert remote_cost > local_cost

    def test_ticket_works_across_servers(self, grid):
        ticket = grid.curator.ticket
        grid.curator.connect("srb2")
        assert grid.curator.ticket is ticket     # same SSO ticket reused
        grid.curator.ls(grid.home)               # validates on srb2

    def test_expired_ticket_rejected(self, grid):
        grid.fed.clock.advance(9 * 3600.0)       # past 8h ticket lifetime
        with pytest.raises(InvalidTicket):
            grid.curator.ls(grid.home)

    def test_public_without_ticket_sees_public_grants(self, grid):
        grid.curator.ingest(f"{grid.home}/pub.txt", b"open")
        grid.curator.grant(f"{grid.home}/pub.txt", "*", "read")
        anon = SrbClient(grid.fed, "laptop", "srb1")
        assert anon.get(f"{grid.home}/pub.txt") == b"open"

    def test_public_denied_without_grant(self, grid):
        grid.curator.ingest(f"{grid.home}/closed.txt", b"sealed")
        anon = SrbClient(grid.fed, "laptop", "srb1")
        with pytest.raises(AccessDenied):
            anon.get(f"{grid.home}/closed.txt")

    def test_stats_snapshot(self, grid):
        s = grid.fed.stats()
        assert s["virtual_time_s"] > 0
        assert s["messages"] > 0
        assert s["catalog_objects"] >= 0
