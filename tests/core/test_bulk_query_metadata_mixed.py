"""Per-item error marshalling in ``bulk_query_metadata``.

One batch mixing readable, missing and ACL-denied targets must come
back aligned with the request: each failed item carries its own
``error``/``error_type`` entry, each ok item its metadata — and the
bulk catalog read must stitch metadata back onto the *right* items even
when failures are interleaved between them.
"""

import pytest

from repro.core import SrbClient


@pytest.fixture
def dataset(grid):
    """Three objects with distinct metadata plus a reader with partial
    access."""
    c, home = grid.curator, grid.home
    for name in ("a", "b", "c"):
        path = f"{home}/{name}.dat"
        c.ingest(path, f"data-{name}".encode())
        c.add_metadata(path, "series", f"series-{name}")
    grid.fed.add_user("visitor@sdsc", "pw", role="reader")
    # object-level grants only: the visitor may read a and c but holds
    # nothing on b (and no collection-chain grant rescues it)
    c.grant(f"{home}/a.dat", "visitor@sdsc", "read")
    c.grant(f"{home}/c.dat", "visitor@sdsc", "read")
    visitor = SrbClient(grid.fed, "laptop", "srb1", "visitor@sdsc", "pw")
    visitor.login()
    return grid, visitor


def test_mixed_ok_missing_denied(dataset):
    grid, visitor = dataset
    home = grid.home
    targets = [
        f"{home}/a.dat",          # ok
        f"{home}/ghost.dat",      # missing
        f"{home}/b.dat",          # denied
        f"{home}/c.dat",          # ok — metadata must not shift onto b
    ]
    results = visitor.bulk_query_metadata(targets)
    assert [r["path"] for r in results] == targets

    ok_a, missing, denied, ok_c = results
    assert "error" not in ok_a and "error" not in ok_c
    assert {m["attr"]: m["value"] for m in ok_a["metadata"]
            }["series"] == "series-a"
    assert {m["attr"]: m["value"] for m in ok_c["metadata"]
            }["series"] == "series-c"

    assert missing["error_type"] == "NoSuchObject"
    assert "metadata" not in missing
    assert denied["error_type"] == "AccessDenied"
    assert "metadata" not in denied


def test_all_failed_batch(dataset):
    grid, visitor = dataset
    results = visitor.bulk_query_metadata(
        [f"{grid.home}/nope1", f"{grid.home}/nope2"])
    assert all(r["error_type"] == "NoSuchObject" for r in results)


def test_owner_sees_everything(dataset):
    grid, _visitor = dataset
    home = grid.home
    results = grid.curator.bulk_query_metadata(
        [f"{home}/a.dat", f"{home}/b.dat", f"{home}/c.dat"])
    assert all("error" not in r and r["metadata"] for r in results)


def test_iter_variant_pages_and_preserves_errors(dataset):
    grid, visitor = dataset
    home = grid.home
    targets = [f"{home}/a.dat", f"{home}/ghost.dat", f"{home}/b.dat",
               f"{home}/c.dat"]
    calls0 = grid.fed.rpc.stats.calls
    items = list(visitor.iter_bulk_query_metadata(targets, page_size=2))
    assert [r["path"] for r in items] == targets
    assert [r.get("error_type") for r in items] == \
        [None, "NoSuchObject", "AccessDenied", None]
    assert grid.fed.rpc.stats.calls - calls0 == 2   # two slices of two
