"""Unit tests for ACL evaluation (permission ladder, inheritance, groups,
roles, public access)."""

import pytest

from repro.auth.users import PUBLIC, Principal, UserRegistry
from repro.core.access import AccessController, satisfies
from repro.errors import AccessDenied
from repro.mcat import Mcat

SEKAR = Principal.parse("sekar@sdsc")
MOORE = Principal.parse("moore@sdsc")
WAN = Principal.parse("mwan@sdsc")


@pytest.fixture
def env():
    mcat = Mcat()
    users = UserRegistry()
    for p in ("sekar@sdsc", "moore@sdsc", "mwan@sdsc"):
        users.add_user(p, "pw")
    mcat.create_collection("/demozone/cultures", str(SEKAR), now=0.0)
    mcat.create_collection("/demozone/cultures/avian", str(SEKAR), now=0.0)
    oid = mcat.create_object("/demozone/cultures/avian/ibis.jpg", "data",
                             str(SEKAR), now=0.0)
    return mcat, users, AccessController(mcat, users), oid


class TestLadder:
    def test_levels_imply_weaker(self):
        assert satisfies("own", "write")
        assert satisfies("write", "read")
        assert satisfies("own", "read")

    def test_weaker_does_not_imply_stronger(self):
        assert not satisfies("read", "write")
        assert not satisfies("write", "own")

    def test_read_implies_annotate(self):
        # "annotations can be inserted by any user with a read permission"
        assert satisfies("read", "annotate")
        assert satisfies("annotate", "annotate")
        assert not satisfies("annotate", "write")


class TestOwnership:
    def test_owner_has_own(self, env):
        mcat, users, ac, oid = env
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(SEKAR, obj) == "own"

    def test_stranger_has_nothing(self, env):
        mcat, users, ac, oid = env
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) is None

    def test_collection_owner(self, env):
        mcat, users, ac, oid = env
        assert ac.permission_on_collection(SEKAR, "/demozone/cultures") == "own"


class TestObjectGrants:
    def test_direct_grant(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, str(MOORE), "read")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) == "read"

    def test_require_raises_on_insufficient(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, str(MOORE), "read")
        obj = mcat.get_object_by_id(oid)
        with pytest.raises(AccessDenied):
            ac.require_object(MOORE, obj, "write")

    def test_require_passes_on_sufficient(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, str(MOORE), "write")
        obj = mcat.get_object_by_id(oid)
        ac.require_object(MOORE, obj, "read")

    def test_denial_counted(self, env):
        mcat, users, ac, oid = env
        obj = mcat.get_object_by_id(oid)
        with pytest.raises(AccessDenied):
            ac.require_object(MOORE, obj, "read")
        assert ac.denials == 1


class TestInheritance:
    def test_collection_grant_covers_cone(self, env):
        mcat, users, ac, oid = env
        cid = mcat.get_collection("/demozone/cultures")["cid"]
        mcat.grant("collection", cid, str(MOORE), "read")
        obj = mcat.get_object_by_id(oid)          # two levels below
        assert ac.permission_on_object(MOORE, obj) == "read"

    def test_nearer_stronger_grant_wins(self, env):
        mcat, users, ac, oid = env
        top = mcat.get_collection("/demozone/cultures")["cid"]
        sub = mcat.get_collection("/demozone/cultures/avian")["cid"]
        mcat.grant("collection", top, str(MOORE), "read")
        mcat.grant("collection", sub, str(MOORE), "write")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) == "write"

    def test_object_grant_beats_weak_collection_grant(self, env):
        mcat, users, ac, oid = env
        top = mcat.get_collection("/demozone/cultures")["cid"]
        mcat.grant("collection", top, str(MOORE), "read")
        mcat.grant("object", oid, str(MOORE), "own")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) == "own"

    def test_collection_permission_on_subcollection(self, env):
        mcat, users, ac, oid = env
        top = mcat.get_collection("/demozone/cultures")["cid"]
        mcat.grant("collection", top, str(MOORE), "write")
        assert ac.permission_on_collection(
            MOORE, "/demozone/cultures/avian") == "write"


class TestGroups:
    def test_group_grant(self, env):
        mcat, users, ac, oid = env
        users.create_group("curators")
        users.add_to_group("curators", str(MOORE))
        mcat.grant("object", oid, "group:curators", "write")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) == "write"
        assert ac.permission_on_object(WAN, obj) is None

    def test_leaving_group_loses_access(self, env):
        mcat, users, ac, oid = env
        users.create_group("g")
        users.add_to_group("g", str(MOORE))
        mcat.grant("object", oid, "group:g", "read")
        users.remove_from_group("g", str(MOORE))
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(MOORE, obj) is None


class TestPublicAndRoles:
    def test_star_grant_covers_everyone(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, "*", "read")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(PUBLIC, obj) == "read"
        assert ac.permission_on_object(MOORE, obj) == "read"

    def test_public_principal_grant(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, str(PUBLIC), "read")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(PUBLIC, obj) == "read"

    def test_public_cannot_write_with_read_grant(self, env):
        mcat, users, ac, oid = env
        mcat.grant("object", oid, "*", "read")
        obj = mcat.get_object_by_id(oid)
        with pytest.raises(AccessDenied):
            ac.require_object(PUBLIC, obj, "write")

    def test_sysadmin_owns_everything(self, env):
        mcat, users, ac, oid = env
        users.add_user("root@sdsc", "pw", role="sysadmin")
        obj = mcat.get_object_by_id(oid)
        root = Principal.parse("root@sdsc")
        assert ac.permission_on_object(root, obj) == "own"
        assert ac.permission_on_collection(root, "/demozone/cultures") == "own"

    def test_unknown_principal_is_just_denied(self, env):
        mcat, users, ac, oid = env
        ghost = Principal.parse("ghost@nowhere")
        obj = mcat.get_object_by_id(oid)
        assert ac.permission_on_object(ghost, obj) is None

    def test_can_helpers(self, env):
        mcat, users, ac, oid = env
        obj = mcat.get_object_by_id(oid)
        assert ac.can_object(SEKAR, obj, "own")
        assert not ac.can_object(MOORE, obj, "read")
        assert ac.can_collection(SEKAR, "/demozone/cultures", "write")
