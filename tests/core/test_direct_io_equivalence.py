"""Direct data channels are a routing change, not a semantics change.

Property test: twin federations — identical topology, one with
``direct_io=True``, one without — run the same operation sequence and
must agree on everything a user can observe: returned bytes, recorded
checksums, catalog rows and replica sets.  Only the *charged paths*
may differ, and they must actually differ — the direct twin moves its
remote data legs over brokered channels (``net.direct.*``), the
pass-through twin funnels every byte through the server host.

Covers every byte-bearing op kind the redirect path touches: ingest,
get, striped get, bulk_get, put, replicate, synchronize, copy, and
container ingest/retrieve.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Federation, SrbClient


def build_fed(direct: bool):
    """Client far from the server, replicas on two storage hosts."""
    fed = Federation(zone="z", direct_io=direct)
    for h in ("hs", "hr1", "hr2", "hc"):
        fed.add_host(h)
    fed.add_server("s1", "hs", mcat=True)
    fed.add_fs_resource("r1", "hr1")
    fed.add_fs_resource("r2", "hr2")
    fed.add_logical_resource("both", ["r1", "r2"])
    fed.default_resource = "r1"
    fed.bootstrap_admin()
    client = SrbClient(fed, "hc", "s1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/z/w")
    return fed, client


def catalog_state(fed: Federation):
    """Everything a user can observe about the catalog, as one value."""
    state = []
    objs = fed.mcat.objects_in_collection("/z", recursive=True)
    for path in sorted(str(o["path"]) for o in objs):
        obj = fed.mcat.find_object(path)
        reps = sorted(
            (r["resource"], int(r["size"]), bool(r["is_dirty"]),
             r["container_oid"] is not None)
            for r in fed.mcat.replicas(int(obj["oid"])))
        state.append((path, obj["kind"], obj["checksum"],
                      int(obj["size"] or 0), reps))
    return state


OPS = st.lists(
    st.tuples(
        st.sampled_from(["ingest", "get", "put", "bulk_get", "striped_get",
                         "replicate", "synchronize", "copy",
                         "container_ingest", "container_get"]),
        st.binary(min_size=1, max_size=64),
        st.integers(min_value=0, max_value=3)),
    min_size=3, max_size=12)


def run_ops(fed, client, ops):
    """Apply one op sequence; return every byte payload handed back."""
    outputs = []
    client.create_container("/z/w/cont", "r1")
    # seed object with replicas on both storage hosts so striped/bulk
    # reads and synchronize always have material to work on
    client.ingest("/z/w/seed", b"seed-bytes" * 400, resource="both")
    ncopies = 0
    for kind, payload, sel in ops:
        path = f"/z/w/f{sel}"
        exists = fed.mcat.find_object(path) is not None
        if kind == "ingest" and not exists:
            client.ingest(path, payload, resource="both")
        elif kind == "get" and exists:
            outputs.append(client.get(path))
        elif kind == "put" and exists:
            client.put(path, payload)
        elif kind == "bulk_get":
            for item in client.bulk_get(["/z/w/seed"]
                                        + ([path] if exists else [])):
                outputs.append(item.get("data"))
        elif kind == "striped_get":
            outputs.append(client.get("/z/w/seed", stripes=2))
        elif kind == "replicate" and exists:
            if all(r["is_dirty"] is False for r in fed.mcat.replicas(
                    int(fed.mcat.find_object(path)["oid"]))):
                client.replicate(path, "r2")
        elif kind == "synchronize" and exists:
            client.synchronize(path)
        elif kind == "copy" and exists:
            client.copy(path, f"/z/w/copy{ncopies}", resource="r2")
            ncopies += 1
        elif kind == "container_ingest":
            cpath = f"/z/w/member{sel}"
            if fed.mcat.find_object(cpath) is None:
                client.ingest(cpath, payload, container="/z/w/cont")
        elif kind == "container_get":
            cpath = f"/z/w/member{sel}"
            if fed.mcat.find_object(cpath) is not None:
                outputs.append(client.get(cpath))
    outputs.append(client.get("/z/w/seed"))
    return outputs


class TestDirectIoEquivalence:
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(OPS)
    def test_same_bytes_same_catalog_different_paths(self, ops):
        fed_off, client_off = build_fed(direct=False)
        fed_on, client_on = build_fed(direct=True)

        out_off = run_ops(fed_off, client_off, ops)
        out_on = run_ops(fed_on, client_on, ops)

        # identical user-visible results, byte for byte
        assert out_on == out_off
        assert catalog_state(fed_on) == catalog_state(fed_off)

        stats_on, stats_off = fed_on.stats(), fed_off.stats()
        # the direct twin really redirected: the seed ingest alone
        # guarantees at least one remote data leg ran as a channel
        assert stats_on["direct_channels"] > 0
        assert stats_on["direct_bytes"] > 0
        assert stats_off["direct_channels"] == 0
        # and its redirected legs skipped the server-host crossing:
        # strictly fewer bytes on the wire for the same outcome
        assert stats_on["bytes_on_wire"] < stats_off["bytes_on_wire"]
        # only the charged paths differ — failures/denials agree
        assert stats_on["redirects_denied"] == 0
        assert stats_on["rpc_failures"] == stats_off["rpc_failures"]
