"""Property-based tests on core invariants.

These drive random operation sequences against a tiny federation and
check the system-level invariants the paper relies on:

* replica consistency: after any mix of puts and synchronizes, every
  clean replica serves the latest content;
* namespace integrity: objects are always reachable at exactly the path
  the catalog reports, and moves never lose them;
* container layout: members never overlap and concatenating the member
  slices reproduces the container bytes.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import Federation, SrbClient


def build_fed() -> tuple:
    fed = Federation(zone="z")
    fed.add_host("h1")
    fed.add_host("h2")
    fed.add_server("s1", "h1", mcat=True)
    fed.add_fs_resource("r1", "h1")
    fed.add_fs_resource("r2", "h2")
    fed.add_logical_resource("both", ["r1", "r2"])
    fed.default_resource = "r1"
    fed.bootstrap_admin()
    client = SrbClient(fed, "h1", "s1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/z/w")
    return fed, client


# op encoding: (kind, payload)
write_ops = st.lists(
    st.tuples(st.sampled_from(["put", "sync", "replicate"]),
              st.binary(min_size=1, max_size=32)),
    min_size=1, max_size=8)


class TestReplicaConsistency:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(write_ops)
    def test_clean_replicas_serve_latest_write(self, ops):
        fed, client = build_fed()
        path = "/z/w/f.dat"
        client.ingest(path, b"initial", resource="both")
        latest = b"initial"
        replicated_to = 0
        for kind, payload in ops:
            if kind == "put":
                client.put(path, payload)
                latest = payload
            elif kind == "sync":
                client.synchronize(path)
            elif kind == "replicate" and replicated_to < 2:
                client.replicate(path, "r1")
                replicated_to += 1
        # default read always returns the latest content
        assert client.get(path) == latest
        # every clean replica individually serves the latest content
        oid = fed.mcat.get_object(path)["oid"]
        for rep in fed.mcat.replicas(oid):
            if not rep["is_dirty"]:
                assert client.get(path, replica_num=rep["replica_num"]) == latest
        # after one synchronize, no dirty replicas remain
        client.synchronize(path)
        assert all(not r["is_dirty"] for r in fed.mcat.replicas(oid))


names = st.sampled_from(["a", "b", "c", "d"])


class TestNamespaceIntegrity:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.tuples(st.sampled_from(["ingest", "move", "delete"]),
                              names, names), min_size=1, max_size=12))
    def test_catalog_paths_always_resolvable(self, ops):
        fed, client = build_fed()
        live = {}          # path -> content
        for kind, n1, n2 in ops:
            p1, p2 = f"/z/w/{n1}", f"/z/w/{n2}"
            if kind == "ingest" and p1 not in live:
                client.ingest(p1, n1.encode())
                live[p1] = n1.encode()
            elif kind == "move" and p1 in live and p2 not in live and p1 != p2:
                client.move(p1, p2)
                live[p2] = live.pop(p1)
            elif kind == "delete" and p1 in live:
                client.delete(p1)
                del live[p1]
        # every live path resolves to its content; nothing extra exists
        for path, content in live.items():
            assert client.get(path) == content
        listed = {o["path"] for o in client.ls("/z/w")["objects"]}
        assert listed == set(live)


class TestContainerLayout:
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(st.lists(st.binary(min_size=1, max_size=64), min_size=1,
                    max_size=10))
    def test_member_slices_tile_the_container(self, blobs):
        fed, client = build_fed()
        client.create_container("/z/w/cont", "both")
        for i, blob in enumerate(blobs):
            client.ingest(f"/z/w/m{i}", blob, container="/z/w/cont")
        coid = fed.mcat.get_object("/z/w/cont")["oid"]
        members = fed.mcat.container_members(coid)
        # offsets are disjoint, ordered, and gap-free
        expected_offset = 0
        for m in members:
            assert m["offset"] == expected_offset
            expected_offset += m["size"]
        assert fed.mcat.get_object("/z/w/cont")["size"] == expected_offset
        # each member reads back exactly its blob
        for i, blob in enumerate(blobs):
            assert client.get(f"/z/w/m{i}") == blob
        # concatenation of slices equals the physical container bytes
        crep = fed.mcat.replicas(coid)[0]
        res = fed.resources.physical(crep["resource"])
        assert res.driver.read_all(crep["physical_path"]) == b"".join(blobs)
