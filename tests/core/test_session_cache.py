"""Server<->resource session cache (Federation(session_cache=True)).

The cache must amortize the per-operation open probe (and, without SSO,
the challenge-response) while keeping the failure semantics the paper's
experiments measure: any topology change invalidates every cached
session, so E2's failover still pays its charged timeout and E7's
handshake ablation is measured on cold sessions.
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import HostUnreachable


def build_fed(**knobs):
    fed = Federation(zone="z", **knobs)
    fed.add_host("h1")
    fed.add_host("h2")
    fed.add_server("s1", "h1", mcat=True)
    fed.add_fs_resource("r1", "h1")
    fed.add_fs_resource("r2", "h2")
    fed.default_resource = "r2"
    fed.bootstrap_admin()
    client = SrbClient(fed, "h1", "s1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/z/w")
    return fed, client


class TestHitMiss:
    def test_repeat_get_hits_cache(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        m = fed.obs.metrics
        client.get("/z/w/f.dat")
        assert m.get("srb.session_cache", result="miss",
                     server="s1", resource="r2") >= 1
        hits_before = m.get("srb.session_cache", result="hit",
                            server="s1", resource="r2")
        client.get("/z/w/f.dat")
        assert m.get("srb.session_cache", result="hit",
                     server="s1", resource="r2") == hits_before + 1

    def test_cached_session_skips_probe_messages(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        warm = fed.network.messages_sent
        client.get("/z/w/f.dat")
        warm_msgs = fed.network.messages_sent - warm

        cold_fed, cold_client = build_fed(session_cache=False)
        cold_client.ingest("/z/w/f.dat", b"payload")
        cold_client.get("/z/w/f.dat")
        before = cold_fed.network.messages_sent
        cold_client.get("/z/w/f.dat")
        cold_msgs = cold_fed.network.messages_sent - before
        # the warm get saves exactly the open probe
        assert warm_msgs == cold_msgs - 1

    def test_cache_off_never_records_metrics(self):
        fed, client = build_fed(session_cache=False)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        client.get("/z/w/f.dat")
        assert fed.obs.metrics.total("srb.session_cache") == 0

    def test_stats_surface_cache_hits(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        client.get("/z/w/f.dat")
        stats = fed.stats()
        assert stats["session_cache"] is True
        assert stats["session_cache_hits"] >= 1


class TestInvalidation:
    def test_set_down_invalidates_through_real_get(self):
        """E2 semantics survive the cache: after the storage host dies,
        the next get must re-probe and pay the charged timeout."""
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.replicate("/z/w/f.dat", "r1")
        client.get("/z/w/f.dat")            # session to r2 now cached
        fed.network.set_down("h2")
        failed_before = fed.network.failed_attempts
        data = client.get("/z/w/f.dat")     # fails over to r1
        assert data == b"payload"
        assert fed.network.failed_attempts > failed_before

    def test_heal_requires_fresh_session(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        m = fed.obs.metrics
        misses = m.get("srb.session_cache", result="miss",
                       server="s1", resource="r2")
        fed.network.partition("h1", "h2")
        fed.network.heal("h1", "h2")
        client.get("/z/w/f.dat")
        assert m.get("srb.session_cache", result="miss",
                     server="s1", resource="r2") == misses + 1

    def test_reset_sessions_flushes(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        assert fed.reset_sessions() >= 1
        assert fed.reset_sessions() == 0
        m = fed.obs.metrics
        misses = m.get("srb.session_cache", result="miss",
                       server="s1", resource="r2")
        client.get("/z/w/f.dat")
        assert m.get("srb.session_cache", result="miss",
                     server="s1", resource="r2") == misses + 1

    def test_unreachable_probe_drops_cached_entry(self):
        fed, client = build_fed(session_cache=True)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        srv = fed.server("s1")
        assert "r2" in srv._session_cache
        fed.network.set_down("h2")
        with pytest.raises(HostUnreachable):
            # direct plane touch: the failed probe must evict
            srv.data._resource_session(fed.resources.physical("r2"))
        assert "r2" not in srv._session_cache


class TestSsoInteraction:
    def test_sso_off_cold_sessions_pay_handshake_every_time(self):
        """E7's ablation measures cold sessions: without the cache each
        touch of the resource re-runs the challenge-response."""
        fed, client = build_fed(session_cache=False, sso_enabled=False)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        before = fed.network.messages_sent
        client.get("/z/w/f.dat")
        handshake_msgs = fed.network.messages_sent - before

        sso_fed, sso_client = build_fed(session_cache=False,
                                        sso_enabled=True)
        sso_client.ingest("/z/w/f.dat", b"payload")
        sso_client.get("/z/w/f.dat")
        before = sso_fed.network.messages_sent
        sso_client.get("/z/w/f.dat")
        sso_msgs = sso_fed.network.messages_sent - before
        assert handshake_msgs == sso_msgs + 4

    def test_cache_amortizes_the_handshake_too(self):
        fed, client = build_fed(session_cache=True, sso_enabled=False)
        client.ingest("/z/w/f.dat", b"payload")
        client.get("/z/w/f.dat")
        before = fed.network.messages_sent
        client.get("/z/w/f.dat")
        with_cache = fed.network.messages_sent - before

        cold_fed, cold_client = build_fed(session_cache=False,
                                          sso_enabled=False)
        cold_client.ingest("/z/w/f.dat", b"payload")
        cold_client.get("/z/w/f.dat")
        before = cold_fed.network.messages_sent
        cold_client.get("/z/w/f.dat")
        without = cold_fed.network.messages_sent - before
        # saved: 4 handshake messages + 1 open probe
        assert with_cache == without - 5
