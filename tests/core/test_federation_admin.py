"""Tests for federation wiring, cache management and proxy administration."""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import NoSuchServer, SrbError
from repro.mysrb import Browser, MySrbApp
from repro.workload import standard_grid


class TestWiring:
    def test_duplicate_server_name_rejected(self):
        fed = Federation()
        fed.add_host("h")
        fed.add_server("s", "h", mcat=True)
        with pytest.raises(SrbError):
            fed.add_server("s", "h")

    def test_single_mcat_server_enforced(self):
        fed = Federation()
        fed.add_host("h")
        fed.add_server("s1", "h", mcat=True)
        with pytest.raises(SrbError):
            fed.add_server("s2", "h", mcat=True)

    def test_mcat_server_required(self):
        fed = Federation()
        fed.add_host("h")
        fed.add_server("s1", "h")           # non-MCAT only
        with pytest.raises(NoSuchServer):
            _ = fed.mcat_server

    def test_unknown_server_lookup(self):
        fed = Federation()
        with pytest.raises(NoSuchServer):
            fed.server("nope")

    def test_server_on_unknown_host_rejected(self):
        fed = Federation()
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            fed.add_server("s", "ghost-host", mcat=True)

    def test_bootstrap_admin_idempotent(self):
        fed = Federation()
        t1 = fed.bootstrap_admin()
        t2 = fed.bootstrap_admin()
        assert t1.principal == t2.principal

    def test_proxy_command_needs_existing_server(self):
        fed = Federation()
        with pytest.raises(NoSuchServer):
            fed.install_proxy_command("ghost", "cmd", lambda a: b"")

    def test_builtin_proxy_functions_present(self):
        fed = Federation()
        assert "srbps" in fed.proxy_functions
        assert "extract-info" in fed.proxy_functions


class TestCacheSweep:
    def test_sweep_purges_unpinned_archives_only(self):
        g = standard_grid()
        g.curator.ingest(f"{g.home}/a.dat", b"a", resource="hpss-caltech")
        g.curator.ingest(f"{g.home}/b.dat", b"b", resource="hpss-caltech")
        g.curator.ingest(f"{g.home}/c.dat", b"c", resource="unix-sdsc")
        g.curator.pin(f"{g.home}/a.dat", "hpss-caltech")
        purged = g.fed.cache_sweep()
        assert purged == {"hpss-caltech": 1}     # only the unpinned b.dat
        drv = g.fed.resources.physical("hpss-caltech").driver
        rep = g.curator.stat(f"{g.home}/a.dat")["replicas"][0]
        assert drv.is_cached(rep["physical_path"])

    def test_swept_files_still_readable_from_tape(self):
        g = standard_grid()
        g.curator.ingest(f"{g.home}/t.dat", b"tape me",
                         resource="hpss-caltech")
        g.fed.cache_sweep()
        assert g.curator.get(f"{g.home}/t.dat") == b"tape me"

    def test_sweep_with_no_archives(self):
        fed = Federation()
        fed.add_host("h")
        fed.add_fs_resource("fs", "h")
        assert fed.cache_sweep() == {}


class TestResourcesPage:
    def test_resources_listed(self):
        g = standard_grid()
        app = MySrbApp(g.fed)
        browser = Browser(app)
        browser.login("sekar@sdsc", "secret")
        page = browser.get("/resources")
        assert page.code == 200
        for name in ("unix-sdsc", "hpss-caltech", "dlib1", "logrsrc1"):
            assert name in page.text
        assert "archive" in page.text
        assert "unix-sdsc, hpss-caltech" in page.text   # logical members

    def test_down_state_shown(self):
        g = standard_grid()
        g.fed.network.set_down("caltech")
        app = MySrbApp(g.fed)
        browser = Browser(app)
        browser.login("sekar@sdsc", "secret")
        assert "DOWN" in browser.get("/resources").text
