"""Server tests: ingest, get, put, delete, replicate, copy/move/link."""

import pytest

from repro.core import SrbClient
from repro.errors import (
    AccessDenied,
    AlreadyExists,
    InvalidPath,
    MandatoryMetadataMissing,
    NoSuchObject,
    NoSuchReplica,
    ReplicaUnavailable,
    UnsupportedOperation,
)


class TestIngest:
    def test_roundtrip(self, curator, home):
        curator.ingest(f"{home}/a.txt", b"hello", resource="unix-sdsc")
        assert curator.get(f"{home}/a.txt") == b"hello"

    def test_default_resource_used(self, grid):
        grid.curator.ingest(f"{grid.home}/b.txt", b"x")
        rep = grid.curator.stat(f"{grid.home}/b.txt")["replicas"][0]
        assert rep["resource"] == "unix-sdsc"

    def test_logical_resource_fans_out(self, curator, home):
        curator.ingest(f"{home}/c.txt", b"x", resource="logrsrc1")
        reps = curator.stat(f"{home}/c.txt")["replicas"]
        assert {r["resource"] for r in reps} == {"unix-sdsc", "hpss-caltech"}
        # both copies are clean replicas of the same object
        assert all(not r["is_dirty"] for r in reps)

    def test_duplicate_path_rejected(self, curator, home):
        curator.ingest(f"{home}/d.txt", b"x")
        with pytest.raises(AlreadyExists):
            curator.ingest(f"{home}/d.txt", b"y")

    def test_failed_ingest_rolls_back(self, grid):
        grid.fed.network.set_down("caltech")
        with pytest.raises(Exception):
            grid.curator.ingest(f"{grid.home}/e.txt", b"x",
                                resource="logrsrc1")
        # no half-object left behind
        with pytest.raises(NoSuchObject):
            grid.curator.stat(f"{grid.home}/e.txt")

    def test_structural_metadata_enforced(self, admin, curator, home):
        admin.define_structural("/demozone/home", "project", mandatory=True)
        with pytest.raises(MandatoryMetadataMissing):
            curator.ingest(f"{home}/f.txt", b"x")
        curator.ingest(f"{home}/f.txt", b"x", metadata={"project": "srb"})
        md = curator.get_metadata(f"{home}/f.txt")
        assert md[0]["attr"] == "project"

    def test_structural_default_attached(self, admin, curator, home):
        admin.define_structural("/demozone/home", "zone2",
                                default_value="demo")
        curator.ingest(f"{home}/g.txt", b"x")
        md = {m["attr"]: m["value"] for m in curator.get_metadata(f"{home}/g.txt")}
        assert md["zone2"] == "demo"

    def test_write_needs_permission(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        with pytest.raises(AccessDenied):
            guest.ingest(f"{grid.home}/h.txt", b"x")


class TestGet:
    def test_specific_replica(self, curator, home):
        curator.ingest(f"{home}/r.txt", b"x", resource="logrsrc1")
        assert curator.get(f"{home}/r.txt", replica_num=2) == b"x"

    def test_missing_replica_num(self, curator, home):
        curator.ingest(f"{home}/r2.txt", b"x")
        with pytest.raises(NoSuchReplica):
            curator.get(f"{home}/r2.txt", replica_num=9)

    def test_missing_object(self, curator, home):
        with pytest.raises(NoSuchObject):
            curator.get(f"{home}/ghost")

    def test_failover_to_surviving_replica(self, grid):
        grid.curator.ingest(f"{grid.home}/fo.txt", b"x", resource="logrsrc1")
        grid.fed.network.set_down("caltech")
        assert grid.curator.get(f"{grid.home}/fo.txt") == b"x"

    def test_all_replicas_down(self, grid):
        grid.curator.ingest(f"{grid.home}/fo2.txt", b"x",
                            resource="unix-caltech")
        grid.fed.network.set_down("caltech")
        with pytest.raises(ReplicaUnavailable):
            grid.curator.get(f"{grid.home}/fo2.txt")

    def test_read_needs_permission(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/private.txt", b"secret")
        with pytest.raises(AccessDenied):
            guest.get(f"{grid.home}/private.txt")
        grid.curator.grant(f"{grid.home}/private.txt", "guest@sdsc", "read")
        assert guest.get(f"{grid.home}/private.txt") == b"secret"


class TestPut:
    def test_overwrite_keeps_metadata(self, curator, home):
        curator.ingest(f"{home}/p.txt", b"v1")
        curator.add_metadata(f"{home}/p.txt", "k", "v")
        curator.put(f"{home}/p.txt", b"v2")
        assert curator.get(f"{home}/p.txt") == b"v2"
        assert curator.get_metadata(f"{home}/p.txt")[0]["attr"] == "k"

    def test_put_marks_siblings_dirty(self, curator, home):
        curator.ingest(f"{home}/p2.txt", b"v1", resource="logrsrc1")
        curator.put(f"{home}/p2.txt", b"v2")
        reps = curator.stat(f"{home}/p2.txt")["replicas"]
        dirt = {r["resource"]: r["is_dirty"] for r in reps}
        assert sum(dirt.values()) == 1     # exactly one stale sibling

    def test_synchronize_cleans(self, curator, home):
        curator.ingest(f"{home}/p3.txt", b"v1", resource="logrsrc1")
        curator.put(f"{home}/p3.txt", b"v2")
        assert curator.synchronize(f"{home}/p3.txt") == 1
        reps = curator.stat(f"{home}/p3.txt")["replicas"]
        assert all(not r["is_dirty"] for r in reps)
        assert curator.get(f"{home}/p3.txt", replica_num=2) == b"v2"

    def test_dirty_replica_not_served(self, curator, home):
        curator.ingest(f"{home}/p4.txt", b"v1", resource="logrsrc1")
        curator.put(f"{home}/p4.txt", b"v2")
        # explicit request for the dirty copy still allowed (user asked);
        # but default selection avoids it even if it is listed first
        data = curator.get(f"{home}/p4.txt")
        assert data == b"v2"

    def test_size_updated(self, curator, home):
        curator.ingest(f"{home}/p5.txt", b"12")
        curator.put(f"{home}/p5.txt", b"12345")
        assert curator.stat(f"{home}/p5.txt")["size"] == 5


class TestDelete:
    def test_full_delete_removes_physical(self, grid):
        grid.curator.ingest(f"{grid.home}/x.txt", b"x")
        rep = grid.curator.stat(f"{grid.home}/x.txt")["replicas"][0]
        drv = grid.fed.resources.physical(rep["resource"]).driver
        assert drv.exists(rep["physical_path"])
        grid.curator.delete(f"{grid.home}/x.txt")
        assert not drv.exists(rep["physical_path"])

    def test_one_replica_at_a_time(self, curator, home):
        curator.ingest(f"{home}/y.txt", b"x", resource="logrsrc1")
        curator.delete(f"{home}/y.txt", replica_num=1)
        reps = curator.stat(f"{home}/y.txt")["replicas"]
        assert [r["replica_num"] for r in reps] == [2]
        assert curator.get(f"{home}/y.txt") == b"x"

    def test_metadata_survives_partial_delete(self, curator, home):
        curator.ingest(f"{home}/z.txt", b"x", resource="logrsrc1")
        curator.add_metadata(f"{home}/z.txt", "k", "v")
        curator.delete(f"{home}/z.txt", replica_num=1)
        assert len(curator.get_metadata(f"{home}/z.txt")) == 1

    def test_last_replica_cascades(self, curator, home):
        curator.ingest(f"{home}/w.txt", b"x")
        curator.add_metadata(f"{home}/w.txt", "k", "v")
        curator.delete(f"{home}/w.txt", replica_num=1)
        with pytest.raises(NoSuchObject):
            curator.stat(f"{home}/w.txt")

    def test_delete_needs_own(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/mine.txt", b"x")
        grid.curator.grant(f"{grid.home}/mine.txt", "guest@sdsc", "write")
        with pytest.raises(AccessDenied):
            guest.delete(f"{grid.home}/mine.txt")

    def test_pinned_replica_not_deletable(self, curator, home):
        curator.ingest(f"{home}/pinned.txt", b"x")
        curator.pin(f"{home}/pinned.txt", "unix-sdsc")
        from repro.errors import PinnedFile
        with pytest.raises(PinnedFile):
            curator.delete(f"{home}/pinned.txt")
        curator.unpin(f"{home}/pinned.txt", "unix-sdsc")
        curator.delete(f"{home}/pinned.txt")


class TestReplicate:
    def test_new_replica_inherits_metadata(self, curator, home):
        curator.ingest(f"{home}/rep.txt", b"x")
        curator.add_metadata(f"{home}/rep.txt", "k", "v")
        num = curator.replicate(f"{home}/rep.txt", "unix-caltech")
        assert num == 2
        # metadata hangs off the object: one set, visible regardless
        assert len(curator.get_metadata(f"{home}/rep.txt")) == 1
        assert curator.get(f"{home}/rep.txt", replica_num=2) == b"x"

    def test_replica_numbers_displayed(self, curator, home):
        curator.ingest(f"{home}/rep2.txt", b"x")
        curator.replicate(f"{home}/rep2.txt", "unix-caltech")
        reps = curator.stat(f"{home}/rep2.txt")["replicas"]
        assert [r["replica_num"] for r in reps] == [1, 2]

    def test_ingest_replica_different_bytes(self, curator, home):
        curator.ingest(f"{home}/img.tiff", b"TIFFDATA")
        num = curator.ingest_replica(f"{home}/img.tiff", b"GIFDATA",
                                     resource="unix-caltech")
        assert curator.get(f"{home}/img.tiff", replica_num=num) == b"GIFDATA"
        assert curator.get(f"{home}/img.tiff", replica_num=1) == b"TIFFDATA"


class TestCopyMoveLink:
    def test_copy_does_not_copy_metadata(self, curator, home):
        curator.ingest(f"{home}/src.txt", b"data")
        curator.add_metadata(f"{home}/src.txt", "k", "v")
        curator.copy(f"{home}/src.txt", f"{home}/dst.txt")
        assert curator.get(f"{home}/dst.txt") == b"data"
        assert curator.get_metadata(f"{home}/dst.txt") == []

    def test_copies_are_unconnected(self, curator, home):
        curator.ingest(f"{home}/s2.txt", b"v1")
        curator.copy(f"{home}/s2.txt", f"{home}/d2.txt")
        curator.put(f"{home}/s2.txt", b"v2")
        assert curator.get(f"{home}/d2.txt") == b"v1"

    def test_copy_collection_recursive(self, curator, home):
        curator.mkcoll(f"{home}/cdir")
        curator.mkcoll(f"{home}/cdir/sub")
        curator.ingest(f"{home}/cdir/a.txt", b"a")
        curator.ingest(f"{home}/cdir/sub/b.txt", b"b")
        curator.copy(f"{home}/cdir", f"{home}/cdir2")
        assert curator.get(f"{home}/cdir2/a.txt") == b"a"
        assert curator.get(f"{home}/cdir2/sub/b.txt") == b"b"

    def test_copy_url_unsupported(self, grid):
        grid.fed.web.publish("http://x.org/a", b"c")
        grid.curator.register_url(f"{grid.home}/u", "http://x.org/a")
        with pytest.raises(UnsupportedOperation):
            grid.curator.copy(f"{grid.home}/u", f"{grid.home}/u2")

    def test_logical_move_keeps_metadata_and_bytes(self, curator, home):
        curator.ingest(f"{home}/m.txt", b"x")
        curator.add_metadata(f"{home}/m.txt", "k", "v")
        curator.mkcoll(f"{home}/moved")
        curator.move(f"{home}/m.txt", f"{home}/moved/m.txt")
        assert curator.get(f"{home}/moved/m.txt") == b"x"
        assert len(curator.get_metadata(f"{home}/moved/m.txt")) == 1
        with pytest.raises(NoSuchObject):
            curator.stat(f"{home}/m.txt")

    def test_move_collection(self, curator, home):
        curator.mkcoll(f"{home}/mv")
        curator.ingest(f"{home}/mv/a.txt", b"a")
        curator.mkcoll(f"{home}/target")
        curator.move(f"{home}/mv", f"{home}/target/mv")
        assert curator.get(f"{home}/target/mv/a.txt") == b"a"

    def test_move_collection_into_itself_rejected(self, curator, home):
        curator.mkcoll(f"{home}/loop")
        with pytest.raises(InvalidPath):
            curator.move(f"{home}/loop", f"{home}/loop/inner")

    def test_physical_move_keeps_logical_name(self, curator, home):
        curator.ingest(f"{home}/pm.txt", b"x", resource="unix-sdsc")
        curator.physical_move(f"{home}/pm.txt", "unix-caltech")
        rep = curator.stat(f"{home}/pm.txt")["replicas"][0]
        assert rep["resource"] == "unix-caltech"
        assert curator.get(f"{home}/pm.txt") == b"x"


class TestDatabaseResourceIngest:
    def test_ingest_into_database_stores_lob(self, grid):
        """The SRB (unlike MySRB) supports ingestion into databases
        "through command line and API" — bytes land as a LOB."""
        grid.curator.ingest(f"{grid.home}/indb.dat", b"lob bytes",
                            resource="dlib1")
        assert grid.curator.get(f"{grid.home}/indb.dat") == b"lob bytes"
        drv = grid.fed.resources.physical("dlib1").driver
        rep = grid.curator.stat(f"{grid.home}/indb.dat")["replicas"][0]
        assert drv.exists(rep["physical_path"])
        assert len(drv.database.table("lobs")) == 1

    def test_lob_replicable_to_filesystem(self, grid):
        grid.curator.ingest(f"{grid.home}/indb2.dat", b"x", resource="dlib1")
        grid.curator.replicate(f"{grid.home}/indb2.dat", "unix-sdsc")
        assert grid.curator.get(f"{grid.home}/indb2.dat",
                                replica_num=2) == b"x"
