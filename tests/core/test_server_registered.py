"""Server tests: the five registered-object kinds."""

import pytest

from repro.db import Column
from repro.errors import (
    NoSuchObject,
    NoSuchPhysicalFile,
    UnsupportedOperation,
)


@pytest.fixture
def dbres(grid):
    drv = grid.fed.resources.physical("dlib1").driver
    t = drv.create_user_table("stars", [Column("name", "TEXT"),
                                        Column("mag", "FLOAT")])
    t.insert({"name": "Vega", "mag": 0.03})
    t.insert({"name": "Sirius", "mag": -1.46})
    t.insert({"name": "Deneb", "mag": 1.25})
    return drv


class TestRegisteredFile:
    def test_register_and_read(self, grid):
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/outside/legacy.dat", b"pre-existing")
        grid.curator.register_file(f"{grid.home}/legacy", "unix-caltech",
                                   "/outside/legacy.dat")
        assert grid.curator.get(f"{grid.home}/legacy") == b"pre-existing"
        assert grid.curator.stat(f"{grid.home}/legacy")["kind"] == "registered"

    def test_size_may_drift(self, grid):
        # "file size and other characteristics might change without SRB
        # being aware of these changes"
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/outside/drift.dat", b"12")
        grid.curator.register_file(f"{grid.home}/drift", "unix-caltech",
                                   "/outside/drift.dat")
        drv.append("/outside/drift.dat", b"3456")
        assert grid.curator.stat(f"{grid.home}/drift")["size"] == 2   # stale
        assert grid.curator.get(f"{grid.home}/drift") == b"123456"    # live

    def test_delete_unlinks_without_touching_physical(self, grid):
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/outside/keep.dat", b"keep me")
        grid.curator.register_file(f"{grid.home}/keep", "unix-caltech",
                                   "/outside/keep.dat")
        grid.curator.delete(f"{grid.home}/keep")
        assert drv.exists("/outside/keep.dat")

    def test_registered_file_replicable(self, grid):
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/outside/rep.dat", b"data")
        grid.curator.register_file(f"{grid.home}/rep", "unix-caltech",
                                   "/outside/rep.dat")
        grid.curator.replicate(f"{grid.home}/rep", "unix-sdsc")
        assert grid.curator.get(f"{grid.home}/rep", replica_num=2) == b"data"


class TestShadowDirectory:
    @pytest.fixture
    def shadow(self, grid):
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/archive/cone/a.txt", b"alpha")
        drv.create("/archive/cone/sub/b.txt", b"beta")
        grid.curator.register_directory(f"{grid.home}/cone", "unix-caltech",
                                        "/archive/cone")
        return grid

    def test_cone_files_visible(self, shadow, grid):
        assert grid.curator.get(f"{grid.home}/cone/a.txt") == b"alpha"
        assert grid.curator.get(f"{grid.home}/cone/sub/b.txt") == b"beta"

    def test_listing_through_shadow(self, shadow, grid):
        listing = grid.curator.ls(f"{grid.home}/cone")
        names = [o["name"] for o in listing["objects"]]
        assert names == ["a.txt"]
        assert listing["collections"] == [f"{grid.home}/cone/sub"]

    def test_direct_get_of_dir_object_refused(self, shadow, grid):
        with pytest.raises(UnsupportedOperation):
            grid.curator.get(f"{grid.home}/cone")

    def test_ingest_into_shadow_not_possible(self, shadow, grid):
        # no collection exists under the shadow -> namespace refuses
        from repro.errors import NoSuchCollection
        with pytest.raises(NoSuchCollection):
            grid.curator.ingest(f"{grid.home}/cone/new.txt", b"x")

    def test_missing_member(self, shadow, grid):
        with pytest.raises(NoSuchPhysicalFile):
            grid.curator.get(f"{grid.home}/cone/ghost.txt")

    def test_delete_unlinks_only(self, shadow, grid):
        grid.curator.delete(f"{grid.home}/cone")
        drv = grid.fed.resources.physical("unix-caltech").driver
        assert drv.exists("/archive/cone/a.txt")


class TestRegisteredSql:
    def test_executed_at_retrieval(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/bright", "dlib1",
                                  "SELECT name FROM stars WHERE mag < 1 "
                                  "ORDER BY mag", template="HTMLREL")
        html = grid.curator.get(f"{grid.home}/bright").decode()
        assert "<td>Sirius</td>" in html and "<td>Vega</td>" in html
        assert "Deneb" not in html

    def test_answer_varies_with_time(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/count", "dlib1",
                                  "SELECT COUNT(*) AS n FROM stars",
                                  template="XMLREL")
        before = grid.curator.get(f"{grid.home}/count").decode()
        dbres.database.table("stars").insert({"name": "Altair", "mag": 0.76})
        after = grid.curator.get(f"{grid.home}/count").decode()
        assert "<field>3</field>" in before
        assert "<field>4</field>" in after

    def test_templates_selectable(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/xml", "dlib1",
                                  "SELECT name FROM stars", template="XMLREL")
        assert grid.curator.get(f"{grid.home}/xml").startswith(b"<?xml")

    def test_nested_template(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/nest", "dlib1",
                                  "SELECT name, mag FROM stars ORDER BY name",
                                  template="HTMLNEST")
        assert b"srb-result-nested" in grid.curator.get(f"{grid.home}/nest")

    def test_user_stylesheet_from_srb(self, grid, dbres):
        sheet = "HEADER 'CSV:'\nROW ''\nCELL '${value},'\nROWEND ';'\n"
        grid.curator.ingest(f"{grid.home}/style.t", sheet.encode(),
                            data_type="ascii text")
        grid.curator.register_sql(f"{grid.home}/csv", "dlib1",
                                  "SELECT name FROM stars ORDER BY mag",
                                  template=f"{grid.home}/style.t")
        out = grid.curator.get(f"{grid.home}/csv").decode()
        assert out == "CSV:Sirius,;Vega,;Deneb,;"

    def test_partial_query_completed_at_retrieval(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/partial", "dlib1",
                                  "SELECT name FROM stars WHERE",
                                  partial=True)
        out = grid.curator.get(f"{grid.home}/partial",
                               sql_remainder="mag < 0").decode()
        assert "Sirius" in out and "Vega" not in out

    def test_partial_without_remainder_refused(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/partial2", "dlib1",
                                  "SELECT name FROM stars WHERE",
                                  partial=True)
        with pytest.raises(UnsupportedOperation):
            grid.curator.get(f"{grid.home}/partial2")

    def test_non_select_rejected_at_registration(self, grid, dbres):
        with pytest.raises(UnsupportedOperation):
            grid.curator.register_sql(f"{grid.home}/evil", "dlib1",
                                      "DROP TABLE stars")

    def test_non_database_resource_rejected(self, grid, dbres):
        with pytest.raises(UnsupportedOperation):
            grid.curator.register_sql(f"{grid.home}/bad", "unix-sdsc",
                                      "SELECT name FROM stars")

    def test_delete_keeps_underlying_tables(self, grid, dbres):
        grid.curator.register_sql(f"{grid.home}/q", "dlib1",
                                  "SELECT name FROM stars")
        grid.curator.delete(f"{grid.home}/q")
        assert dbres.database.has_table("stars")

    def test_register_replica_sql(self, grid, dbres):
        # two queries registered as semantically-equal replicas
        grid.curator.register_sql(f"{grid.home}/dual", "dlib1",
                                  "SELECT name FROM stars WHERE mag < 1",
                                  template="HTMLREL")
        num = grid.curator.register_replica(
            f"{grid.home}/dual", "SELECT name FROM stars WHERE mag < 1.0")
        out = grid.curator.get(f"{grid.home}/dual", replica_num=num)
        assert b"Sirius" in out


class TestRegisteredUrl:
    def test_fetched_at_retrieval(self, grid):
        grid.fed.web.publish("http://museum.org/page", b"<html>art</html>")
        grid.curator.register_url(f"{grid.home}/page",
                                  "http://museum.org/page")
        assert grid.curator.get(f"{grid.home}/page") == b"<html>art</html>"

    def test_contents_not_stored(self, grid):
        grid.fed.web.publish("http://museum.org/live", b"v1")
        grid.curator.register_url(f"{grid.home}/live",
                                  "http://museum.org/live")
        grid.fed.web.publish("http://museum.org/live", b"v2")
        assert grid.curator.get(f"{grid.home}/live") == b"v2"

    def test_cgi_urls_allowed(self, grid):
        calls = {"n": 0}

        def cgi():
            calls["n"] += 1
            return f"call-{calls['n']}".encode()

        grid.fed.web.publish("http://museum.org/cgi?id=7", cgi)
        grid.curator.register_url(f"{grid.home}/cgi",
                                  "http://museum.org/cgi?id=7")
        assert grid.curator.get(f"{grid.home}/cgi") == b"call-1"
        assert grid.curator.get(f"{grid.home}/cgi") == b"call-2"

    def test_delete_does_not_damage_url(self, grid):
        grid.fed.web.publish("http://museum.org/safe", b"content")
        grid.curator.register_url(f"{grid.home}/safe",
                                  "http://museum.org/safe")
        grid.curator.delete(f"{grid.home}/safe")
        assert grid.fed.web.is_published("http://museum.org/safe")

    def test_bad_scheme_rejected(self, grid):
        from repro.errors import StorageError
        with pytest.raises(StorageError):
            grid.curator.register_url(f"{grid.home}/bad", "gopher://old/x")

    def test_url_replica(self, grid):
        grid.fed.web.publish("http://a.org/x", b"same")
        grid.fed.web.publish("http://mirror.org/x", b"same")
        grid.curator.register_url(f"{grid.home}/mirrored", "http://a.org/x")
        num = grid.curator.register_replica(f"{grid.home}/mirrored",
                                            "http://mirror.org/x")
        assert grid.curator.get(f"{grid.home}/mirrored",
                                replica_num=num) == b"same"


class TestMethodObjects:
    def test_proxy_function(self, grid):
        grid.curator.register_method(f"{grid.home}/ps", "srb1", "srbps",
                                     proxy_function=True)
        out = grid.curator.get(f"{grid.home}/ps").decode()
        assert "srb1" in out and "srb2" in out

    def test_proxy_command_requires_admin_install(self, grid):
        with pytest.raises(UnsupportedOperation):
            grid.curator.register_method(f"{grid.home}/evil", "srb1",
                                         "rm-rf")

    def test_installed_command_with_args(self, grid):
        grid.fed.install_proxy_command(
            "srb2", "wordcount", lambda args: str(len(args.split())).encode())
        grid.curator.register_method(f"{grid.home}/wc", "srb2", "wordcount")
        assert grid.curator.get(f"{grid.home}/wc",
                                args="a b c") == b"3"

    def test_unknown_proxy_function(self, grid):
        with pytest.raises(UnsupportedOperation):
            grid.curator.register_method(f"{grid.home}/x", "srb1", "nope",
                                         proxy_function=True)

    def test_extract_info_function(self, grid):
        grid.curator.register_method(f"{grid.home}/xinfo", "srb1",
                                     "extract-info", proxy_function=True)
        out = grid.curator.get(f"{grid.home}/xinfo",
                               args="fits image|fits header").decode()
        assert "fits header" in out and "rules" in out
