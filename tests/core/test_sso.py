"""Server tests: single sign-on vs per-resource authentication (E7 logic)."""

import pytest

from repro.workload import standard_grid


class TestSso:
    def test_one_login_reaches_all_resources(self):
        g = standard_grid(sso_enabled=True)
        # one login already happened in the fixture; touch three different
        # storage systems without further credential exchanges
        g.curator.ingest(f"{g.home}/a", b"x", resource="unix-sdsc")
        g.curator.ingest(f"{g.home}/b", b"x", resource="unix-caltech")
        g.curator.ingest(f"{g.home}/c", b"x", resource="hpss-caltech")
        assert g.curator.get(f"{g.home}/c") == b"x"

    def test_per_resource_auth_costs_messages(self):
        g_sso = standard_grid(sso_enabled=True)
        g_leg = standard_grid(sso_enabled=False)
        for g in (g_sso, g_leg):
            g.curator.ingest(f"{g.home}/f", b"x", resource="unix-caltech")
        m_sso = g_sso.fed.network.messages_sent
        m_leg = g_leg.fed.network.messages_sent
        for g in (g_sso, g_leg):
            g.curator.get(f"{g.home}/f")
        # the legacy grid spends 4 extra auth messages on the read
        sso_delta = g_sso.fed.network.messages_sent - m_sso
        leg_delta = g_leg.fed.network.messages_sent - m_leg
        assert leg_delta == sso_delta + 4

    def test_per_resource_auth_costs_time(self):
        g_sso = standard_grid(sso_enabled=True)
        g_leg = standard_grid(sso_enabled=False)
        for g in (g_sso, g_leg):
            g.curator.ingest(f"{g.home}/f", b"x", resource="unix-caltech")
        t_sso = g_sso.fed.clock.now
        t_leg = g_leg.fed.clock.now
        g_sso.curator.get(f"{g.home}/f".format(g=g_sso))
        g_leg.curator.get(f"{g.home}/f".format(g=g_leg))
        assert (g_leg.fed.clock.now - t_leg) > (g_sso.fed.clock.now - t_sso)

    def test_login_is_two_round_trips(self):
        g = standard_grid()
        before = g.fed.rpc.stats.calls
        g.curator.login()
        assert g.fed.rpc.stats.calls - before == 2   # challenge + response

    def test_bad_password_rejected_and_audited(self):
        g = standard_grid()
        from repro.core import SrbClient
        from repro.errors import BadCredentials
        bad = SrbClient(g.fed, "laptop", "srb1", "sekar@sdsc", "WRONG")
        with pytest.raises(BadCredentials):
            bad.login()
        failures = [e for e in g.fed.mcat.audit_query(action="login")
                    if not e["ok"]]
        assert len(failures) == 1
