"""Error-path and edge-case tests for the SRB server surface."""

import pytest

from repro.core import SrbClient
from repro.errors import (
    AccessDenied,
    AlreadyExists,
    MetadataError,
    NoSuchCollection,
    NoSuchObject,
    NoSuchReplica,
    NoSuchResource,
    UnsupportedOperation,
)


class TestIngestEdges:
    def test_unknown_resource(self, curator, home):
        with pytest.raises(NoSuchResource):
            curator.ingest(f"{home}/x.txt", b"x", resource="ghost-res")

    def test_missing_collection(self, curator, home):
        with pytest.raises(NoSuchCollection):
            curator.ingest(f"{home}/nowhere/x.txt", b"x")

    def test_no_default_resource(self, tiny_fed, tiny_admin):
        tiny_fed.default_resource = None
        tiny_admin.mkcoll("/demozone/c")
        with pytest.raises(NoSuchResource):
            tiny_admin.ingest("/demozone/c/x", b"x")

    def test_empty_file_allowed(self, curator, home):
        curator.ingest(f"{home}/empty.txt", b"")
        assert curator.get(f"{home}/empty.txt") == b""
        assert curator.stat(f"{home}/empty.txt")["size"] == 0


class TestCopyEdges:
    def test_copy_with_explicit_resource(self, curator, home):
        curator.ingest(f"{home}/src.txt", b"x", resource="unix-sdsc")
        curator.copy(f"{home}/src.txt", f"{home}/dst.txt",
                     resource="unix-caltech")
        rep = curator.stat(f"{home}/dst.txt")["replicas"][0]
        assert rep["resource"] == "unix-caltech"

    def test_copy_collection_skips_pointer_kinds(self, grid):
        grid.curator.mkcoll(f"{grid.home}/mix")
        grid.curator.ingest(f"{grid.home}/mix/real.txt", b"x")
        grid.fed.web.publish("http://x.org/u", b"c")
        grid.curator.register_url(f"{grid.home}/mix/u", "http://x.org/u")
        grid.curator.copy(f"{grid.home}/mix", f"{grid.home}/mix2")
        names = [o["name"] for o in grid.curator.ls(f"{grid.home}/mix2")["objects"]]
        assert names == ["real.txt"]        # URL skipped, like MySRB

    def test_copy_link_copies_target_bytes(self, curator, home):
        curator.ingest(f"{home}/orig.txt", b"original")
        curator.link(f"{home}/orig.txt", f"{home}/ln.txt")
        curator.copy(f"{home}/ln.txt", f"{home}/copied.txt")
        assert curator.get(f"{home}/copied.txt") == b"original"
        assert curator.stat(f"{home}/copied.txt")["kind"] == "data"

    def test_copy_to_existing_path(self, curator, home):
        curator.ingest(f"{home}/a.txt", b"a")
        curator.ingest(f"{home}/b.txt", b"b")
        with pytest.raises(AlreadyExists):
            curator.copy(f"{home}/a.txt", f"{home}/b.txt")


class TestGetEdges:
    def test_args_ignored_for_plain_files(self, curator, home):
        curator.ingest(f"{home}/f.txt", b"x")
        assert curator.get(f"{home}/f.txt", args="ignored") == b"x"

    def test_sql_remainder_on_full_query_ignored(self, grid):
        from repro.db import Column
        drv = grid.fed.resources.physical("dlib1").driver
        t = drv.create_user_table("q", [Column("v", "INT")])
        t.insert({"v": 1})
        grid.curator.register_sql(f"{grid.home}/full", "dlib1",
                                  "SELECT v FROM q", template="XMLREL")
        out = grid.curator.get(f"{grid.home}/full",
                               sql_remainder="junk ignored")
        assert b"<field>1</field>" in out

    def test_get_collection_path_fails(self, curator, home):
        with pytest.raises(NoSuchObject):
            curator.get(home)


class TestVersionEdges:
    def test_get_missing_version(self, curator, home):
        curator.ingest(f"{home}/v.txt", b"x")
        with pytest.raises(NoSuchReplica):
            curator.get_version(f"{home}/v.txt", 7)

    def test_versions_empty_before_checkin(self, curator, home):
        curator.ingest(f"{home}/v2.txt", b"x")
        assert curator.versions(f"{home}/v2.txt") == []


class TestMetadataEdges:
    def test_metadata_on_missing_target(self, curator, home):
        with pytest.raises(NoSuchObject):
            curator.add_metadata(f"{home}/ghost.txt", "k", "v")

    def test_extract_with_wrong_data_type(self, curator, home):
        curator.ingest(f"{home}/x.bin", b"\x00", data_type="binary")
        from repro.errors import ExtractionError
        with pytest.raises(ExtractionError):
            curator.extract_metadata(f"{home}/x.bin", "fits header")

    def test_update_missing_mid(self, curator, home):
        curator.ingest(f"{home}/m.txt", b"x")
        with pytest.raises(MetadataError):
            curator.update_metadata(f"{home}/m.txt", 99999, "v")

    def test_structural_on_missing_collection(self, curator, home):
        with pytest.raises(NoSuchCollection):
            curator.define_structural(f"{home}/ghost", "attr")


class TestAuditOnDenial:
    def test_denied_actions_raise_before_side_effects(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        before = grid.fed.mcat.count_objects()
        with pytest.raises(AccessDenied):
            guest.ingest(f"{grid.home}/nope.txt", b"x")
        assert grid.fed.mcat.count_objects() == before

    def test_acl_denial_counter(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/p.txt", b"x")
        denials = grid.fed.access.denials
        for _ in range(3):
            with pytest.raises(AccessDenied):
                guest.get(f"{grid.home}/p.txt")
        assert grid.fed.access.denials == denials + 3


class TestRmcollEdges:
    def test_rmcoll_needs_own(self, grid):
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.mkcoll(f"{grid.home}/mine")
        grid.curator.grant(f"{grid.home}/mine", "guest@sdsc", "write")
        with pytest.raises(AccessDenied):
            guest.rmcoll(f"{grid.home}/mine")

    def test_rmcoll_missing(self, curator, home):
        with pytest.raises(NoSuchCollection):
            curator.rmcoll(f"{home}/ghost")


class TestRegisteredEdges:
    def test_register_file_for_missing_physical(self, grid):
        # registration succeeds (SRB trusts the pointer); retrieval fails
        grid.curator.register_file(f"{grid.home}/dangling", "unix-caltech",
                                   "/not/there.dat")
        info = grid.curator.stat(f"{grid.home}/dangling")
        assert info["size"] is None
        from repro.errors import NoSuchPhysicalFile
        with pytest.raises(NoSuchPhysicalFile):
            grid.curator.get(f"{grid.home}/dangling")

    def test_register_replica_on_data_object_refused(self, curator, home):
        curator.ingest(f"{home}/d.txt", b"x")
        with pytest.raises(UnsupportedOperation):
            curator.register_replica(f"{home}/d.txt", "SELECT 1")

    def test_shadow_listing_of_file_subpath(self, grid):
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/cone/only.txt", b"x")
        grid.curator.register_directory(f"{grid.home}/sh", "unix-caltech",
                                        "/cone")
        listing = grid.curator.ls(f"{grid.home}/sh")
        assert [o["kind"] for o in listing["objects"]] == ["shadow-file"]
