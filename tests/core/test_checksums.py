"""Tests for checksum recording and replica verification."""

import pytest

from repro.core.server import content_checksum
from repro.errors import AccessDenied


class TestRecording:
    def test_ingest_records_checksum(self, curator, home):
        curator.ingest(f"{home}/c.txt", b"payload")
        info = curator.stat(f"{home}/c.txt")
        assert info["checksum"] == content_checksum(b"payload")

    def test_put_updates_checksum(self, curator, home):
        curator.ingest(f"{home}/c2.txt", b"v1")
        curator.put(f"{home}/c2.txt", b"v2")
        assert curator.stat(f"{home}/c2.txt")["checksum"] == \
            content_checksum(b"v2")

    def test_copy_gets_own_checksum(self, curator, home):
        curator.ingest(f"{home}/src.txt", b"same bytes")
        curator.copy(f"{home}/src.txt", f"{home}/dst.txt")
        assert curator.stat(f"{home}/dst.txt")["checksum"] == \
            content_checksum(b"same bytes")

    def test_registered_objects_have_no_checksum(self, grid):
        grid.fed.web.publish("http://x.org/u", b"c")
        grid.curator.register_url(f"{grid.home}/u", "http://x.org/u")
        assert grid.curator.stat(f"{grid.home}/u")["checksum"] is None


class TestVerification:
    def test_all_replicas_ok(self, curator, home):
        curator.ingest(f"{home}/v.txt", b"x", resource="logrsrc1")
        report = curator.verify(f"{home}/v.txt")
        assert report == {1: "ok", 2: "ok"}

    def test_corruption_detected(self, grid):
        grid.curator.ingest(f"{grid.home}/corr.txt", b"good",
                            resource="logrsrc1")
        # corrupt replica 1 behind SRB's back
        rep = grid.curator.stat(f"{grid.home}/corr.txt")["replicas"][0]
        drv = grid.fed.resources.physical(rep["resource"]).driver
        drv.write(rep["physical_path"], b"evil", offset=0)
        report = grid.curator.verify(f"{grid.home}/corr.txt")
        assert report[1] == "mismatch"
        assert report[2] == "ok"

    def test_unreachable_replica_reported(self, grid):
        grid.curator.ingest(f"{grid.home}/u.txt", b"x", resource="logrsrc1")
        grid.fed.network.set_down("caltech")
        report = grid.curator.verify(f"{grid.home}/u.txt")
        assert report[1] == "ok"
        assert report[2] == "unavailable"

    def test_semantic_replica_reports_mismatch(self, curator, home):
        # "SRB does not check for syntactic or semantic equality" — verify
        # honestly reports the tiff/gif pair as syntactically different
        curator.ingest(f"{home}/img.tiff", b"TIFF")
        curator.ingest_replica(f"{home}/img.tiff", b"GIF",
                               resource="unix-caltech")
        report = curator.verify(f"{home}/img.tiff")
        assert report[1] == "ok"
        assert report[2] == "mismatch"

    def test_container_members_skipped(self, grid):
        grid.fed.add_logical_resource("cres9", ["unix-sdsc"])
        grid.curator.create_container(f"{grid.home}/c9", "cres9")
        grid.curator.ingest(f"{grid.home}/m9", b"x",
                            container=f"{grid.home}/c9")
        report = grid.curator.verify(f"{grid.home}/m9")
        assert report == {1: "skipped-container"}

    def test_verify_needs_read(self, grid):
        from repro.core import SrbClient
        grid.fed.add_user("guest@sdsc", "pw")
        guest = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
        guest.login()
        grid.curator.ingest(f"{grid.home}/priv9.txt", b"x")
        with pytest.raises(AccessDenied):
            guest.verify(f"{grid.home}/priv9.txt")

    def test_verify_audited(self, grid):
        grid.curator.ingest(f"{grid.home}/a9.txt", b"x")
        grid.curator.verify(f"{grid.home}/a9.txt")
        log = grid.admin.audit_log(action="verify")
        assert len(log) == 1
