"""Server tests: metadata operations, annotations, queries, audit."""

import pytest

from repro.core import SrbClient
from repro.errors import AccessDenied, MetadataError
from repro.mcat import Condition, DisplayOnly


@pytest.fixture
def guest(grid):
    grid.fed.add_user("guest@sdsc", "pw")
    g = SrbClient(grid.fed, "laptop", "srb1", "guest@sdsc", "pw")
    g.login()
    return g


class TestMetadataOps:
    def test_add_view_update_delete(self, curator, home):
        curator.ingest(f"{home}/x.txt", b"x")
        mid = curator.add_metadata(f"{home}/x.txt", "topic", "grids",
                                   units=None)
        assert curator.get_metadata(f"{home}/x.txt")[0]["value"] == "grids"
        curator.update_metadata(f"{home}/x.txt", mid, "archives")
        assert curator.get_metadata(f"{home}/x.txt")[0]["value"] == "archives"
        curator.delete_metadata(f"{home}/x.txt", mid)
        assert curator.get_metadata(f"{home}/x.txt") == []

    def test_only_owner_adds_user_metadata(self, grid, guest):
        grid.curator.ingest(f"{grid.home}/y.txt", b"x")
        grid.curator.grant(f"{grid.home}/y.txt", "guest@sdsc", "write")
        with pytest.raises(AccessDenied):
            guest.add_metadata(f"{grid.home}/y.txt", "k", "v")

    def test_dublin_core_via_server(self, curator, home):
        curator.ingest(f"{home}/dc.txt", b"x")
        curator.add_metadata(f"{home}/dc.txt", "Title", "My Notes",
                             meta_class="type", schema_name="dublin-core")
        rows = curator.get_metadata(f"{home}/dc.txt", meta_class="type")
        assert rows[0]["attr"] == "Title"

    def test_collection_metadata(self, curator, home):
        curator.add_metadata(home, "theme", "cultures")
        assert curator.get_metadata(home)[0]["value"] == "cultures"

    def test_copy_metadata(self, curator, home):
        curator.ingest(f"{home}/src.txt", b"x")
        curator.ingest(f"{home}/dst.txt", b"y")
        curator.add_metadata(f"{home}/src.txt", "a", "1")
        curator.add_metadata(f"{home}/src.txt", "b", "2")
        assert curator.copy_metadata(f"{home}/src.txt",
                                     f"{home}/dst.txt") == 2
        assert len(curator.get_metadata(f"{home}/dst.txt")) == 2

    def test_extraction_from_object_itself(self, curator, home):
        fits = (b"SIMPLE  = T\nRA      = 10.5\nDEC     = -3.2\nEND\n")
        curator.ingest(f"{home}/img.fits", fits, data_type="fits image")
        n = curator.extract_metadata(f"{home}/img.fits", "fits header")
        assert n >= 3
        md = {m["attr"]: m["value"]
              for m in curator.get_metadata(f"{home}/img.fits")}
        assert md["RA"] == "10.5"

    def test_extraction_from_sidecar(self, curator, home):
        curator.ingest(f"{home}/scan.img", b"\x00\x01", data_type="dicom image")
        curator.ingest(f"{home}/scan.hdr",
                       b"(0018,0015) Stage: gastrula\n",
                       data_type="ascii text")
        n = curator.extract_metadata(f"{home}/scan.img", "dicom header",
                                     sidecar=f"{home}/scan.hdr")
        assert n == 1
        md = curator.get_metadata(f"{home}/scan.img")
        assert md[0]["attr"] == "Stage" and md[0]["value"] == "gastrula"

    def test_sidecar_method_requires_sidecar(self, curator, home):
        curator.ingest(f"{home}/scan2.img", b"\x00", data_type="dicom image")
        with pytest.raises(MetadataError):
            curator.extract_metadata(f"{home}/scan2.img", "dicom header")

    def test_file_based_metadata(self, curator, home):
        curator.ingest(f"{home}/obj.txt", b"x")
        curator.ingest(f"{home}/obj.meta", b"k = v\n")
        curator.add_metadata(f"{home}/obj.txt", "metadata-file",
                             f"{home}/obj.meta", meta_class="file-based")
        rows = curator.get_metadata(f"{home}/obj.txt",
                                    meta_class="file-based")
        assert rows[0]["value"] == f"{home}/obj.meta"


class TestAnnotations:
    def test_reader_can_annotate(self, grid, guest):
        grid.curator.ingest(f"{grid.home}/ann.txt", b"x")
        grid.curator.grant(f"{grid.home}/ann.txt", "guest@sdsc", "read")
        guest.add_annotation(f"{grid.home}/ann.txt", "rating", "5 stars")
        anns = grid.curator.annotations(f"{grid.home}/ann.txt")
        assert anns[0]["author"] == "guest@sdsc"
        assert anns[0]["ann_type"] == "rating"

    def test_non_reader_cannot_annotate(self, grid, guest):
        grid.curator.ingest(f"{grid.home}/priv.txt", b"x")
        with pytest.raises(AccessDenied):
            guest.add_annotation(f"{grid.home}/priv.txt", "comment", "hi")

    def test_annotation_has_timestamp_and_location(self, curator, home):
        curator.ingest(f"{home}/a.txt", b"x")
        curator.add_annotation(f"{home}/a.txt", "errata", "typo on line 3",
                               location="line 3")
        ann = curator.annotations(f"{home}/a.txt")[0]
        assert ann["location"] == "line 3"
        assert ann["created_at"] >= 0


class TestQuery:
    @pytest.fixture
    def data(self, curator, home):
        for i, (species, wingspan) in enumerate(
                [("ibis", "1.1"), ("heron", "1.9"), ("ibis", "1.3")]):
            curator.ingest(f"{home}/bird{i}.jpg", b"img",
                           data_type="dicom image")
            curator.add_metadata(f"{home}/bird{i}.jpg", "species", species)
            curator.add_metadata(f"{home}/bird{i}.jpg", "wingspan", wingspan,
                                 units="m")
        return home

    def test_conjunctive(self, curator, data):
        r = curator.query(data, [Condition("species", "=", "ibis"),
                                 Condition("wingspan", ">", "1.2")])
        assert len(r.rows) == 1

    def test_display_only(self, curator, data):
        r = curator.query(data, [Condition("species", "=", "heron",
                                           display=False),
                                 DisplayOnly("wingspan")])
        assert r.columns == ["path", "wingspan"]
        assert r.rows[0][1] == "1.9"

    def test_results_filtered_by_acl(self, grid, guest, curator, data):
        grid.curator.grant(grid.home, "guest@sdsc", "read")
        grid.curator.ingest(f"{data}/secret.jpg", b"img")
        grid.curator.add_metadata(f"{data}/secret.jpg", "species", "ibis")
        grid.curator.revoke(grid.home, "guest@sdsc")
        # guest can read scope via a narrower grant on one object only
        grid.curator.grant(f"{data}/bird0.jpg", "guest@sdsc", "read")
        grid.curator.grant(grid.home, "guest@sdsc", "read")
        # re-grant scope read but drop object visibility via revoke order:
        # guest sees everything under home now except nothing is hidden;
        # use a second user-owned object to assert filtering of unreadable:
        r = guest.query(data, [Condition("species", "=", "ibis")])
        assert len(r.rows) >= 1   # visible subset, no AccessDenied leak

    def test_queryable_attrs_via_server(self, curator, data):
        names = curator.queryable_attrs(data)
        assert {"species", "wingspan"} <= set(names)

    def test_query_scope_needs_read(self, grid, guest):
        with pytest.raises(AccessDenied):
            guest.query(grid.home, [Condition("species", "=", "ibis")])


class TestAudit:
    def test_accesses_recorded(self, grid):
        grid.curator.ingest(f"{grid.home}/a.txt", b"x")
        grid.curator.get(f"{grid.home}/a.txt")
        log = grid.admin.audit_log(action="get")
        assert any(e["target"] == f"{grid.home}/a.txt" for e in log)

    def test_only_sysadmin_reads_audit(self, grid):
        with pytest.raises(AccessDenied):
            grid.curator.audit_log()

    def test_filter_by_principal(self, grid):
        grid.curator.ingest(f"{grid.home}/b.txt", b"x")
        log = grid.admin.audit_log(principal_filter="sekar@sdsc",
                                   action="ingest")
        assert all(e["principal"] == "sekar@sdsc" for e in log)
        assert len(log) >= 1

    def test_disabled_audit_records_nothing(self, tiny_fed, tiny_admin):
        tiny_fed.audit_enabled = False
        before = len(tiny_fed.mcat.audit_query())
        tiny_admin.mkcoll("/demozone/q")
        assert len(tiny_fed.mcat.audit_query()) == before


class TestAclAdministration:
    def test_grant_revoke_cycle(self, grid, guest):
        grid.curator.ingest(f"{grid.home}/g.txt", b"x")
        grid.curator.grant(f"{grid.home}/g.txt", "guest@sdsc", "read")
        assert guest.get(f"{grid.home}/g.txt") == b"x"
        grid.curator.revoke(f"{grid.home}/g.txt", "guest@sdsc")
        with pytest.raises(AccessDenied):
            guest.get(f"{grid.home}/g.txt")

    def test_group_grant_via_server(self, grid, guest):
        grid.fed.users.create_group("team")
        grid.fed.users.add_to_group("team", "guest@sdsc")
        grid.curator.ingest(f"{grid.home}/t.txt", b"x")
        grid.curator.grant(f"{grid.home}/t.txt", "group:team", "read")
        assert guest.get(f"{grid.home}/t.txt") == b"x"

    def test_only_owner_grants(self, grid, guest):
        grid.curator.ingest(f"{grid.home}/o.txt", b"x")
        with pytest.raises(AccessDenied):
            guest.grant(f"{grid.home}/o.txt", "guest@sdsc", "read")

    def test_collection_level_grant(self, grid, guest):
        grid.curator.mkcoll(f"{grid.home}/shared")
        grid.curator.ingest(f"{grid.home}/shared/in.txt", b"x")
        grid.curator.grant(f"{grid.home}/shared", "guest@sdsc", "read")
        assert guest.get(f"{grid.home}/shared/in.txt") == b"x"
