"""Tests for the Scommand shell."""

import pytest

from repro.core import SrbClient
from repro.scommands import Shell


@pytest.fixture
def shell(grid):
    client = SrbClient(grid.fed, "laptop", "srb1")
    sh = Shell(client)
    code, out = sh.run("Sinit sekar@sdsc secret")
    assert code == 0
    sh.run(f"Scd {grid.home}")
    return grid, sh


def ok(shell_obj, line):
    code, out = shell_obj.run(line)
    assert code == 0, f"{line!r} failed: {out}"
    return out


class TestSession:
    def test_bad_login(self, grid):
        sh = Shell(SrbClient(grid.fed, "laptop", "srb1"))
        code, out = sh.run("Sinit sekar@sdsc WRONG")
        assert code == 1
        assert "BadCredentials" in out

    def test_pwd_and_cd(self, shell):
        grid, sh = shell
        assert ok(sh, "Spwd") == grid.home
        ok(sh, "Smkdir sub")
        assert ok(sh, "Scd sub") == f"{grid.home}/sub"
        assert ok(sh, "Scd ..") == grid.home

    def test_cd_to_forbidden_fails(self, shell):
        grid, sh = shell
        code, out = sh.run("Scd /")
        assert code == 1

    def test_unknown_command(self, shell):
        grid, sh = shell
        code, out = sh.run("Sfrobnicate x")
        assert code == 1 and "unknown command" in out

    def test_help(self, shell):
        grid, sh = shell
        out = ok(sh, "help")
        assert "Sput" in out and "Squery" in out
        assert "Sput" in ok(sh, "help Sput")

    def test_empty_line(self, shell):
        grid, sh = shell
        assert sh.run("") == (0, "")

    def test_quote_handling(self, shell):
        grid, sh = shell
        ok(sh, 'Smkdir "Avian Culture"')
        assert "Avian Culture/" in ok(sh, "Sls")


class TestDataCommands:
    def test_put_get_roundtrip(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "in.txt"
        local.write_bytes(b"hello from disk")
        ok(sh, f"Sput {local} notes.txt")
        assert ok(sh, "Scat notes.txt") == "hello from disk"
        out_file = tmp_path / "out.txt"
        ok(sh, f"Sget notes.txt {out_file}")
        assert out_file.read_bytes() == b"hello from disk"

    def test_bload_directory(self, shell, tmp_path):
        grid, sh = shell
        for i in range(4):
            (tmp_path / f"f{i}.dat").write_bytes(b"payload-%d" % i)
        ok(sh, "Smkdir loaded")
        out = ok(sh, f"Sbload {tmp_path} loaded")
        assert "4/4" in out
        for i in range(4):
            assert ok(sh, f"Scat loaded/f{i}.dat") == f"payload-{i}"

    def test_bload_reports_per_file_failures(self, shell, tmp_path):
        grid, sh = shell
        (tmp_path / "dup.dat").write_bytes(b"one")
        (tmp_path / "new.dat").write_bytes(b"two")
        ok(sh, "Smkdir part")
        ok(sh, f"Sput {tmp_path / 'dup.dat'} part/dup.dat")
        out = ok(sh, f"Sbload {tmp_path} part")
        assert "1/2" in out and "dup.dat" in out and "failed" in out
        assert ok(sh, "Scat part/new.dat") == "two"

    def test_bload_one_rpc_pair(self, shell, tmp_path):
        """The point of Sbload: N files, one request/response message pair
        on the client--server link (vs 2N for a Sput loop)."""
        grid, sh = shell
        for i in range(10):
            (tmp_path / f"f{i}.dat").write_bytes(b"x")
        ok(sh, "Smkdir bulkdir")
        net = grid.fed.network
        before = net.messages_sent
        ok(sh, f"Sbload {tmp_path} bulkdir")
        # one RPC pair plus the data leg; far fewer than 2 messages/file
        assert net.messages_sent - before < 10

    def test_bload_empty_dir_is_usage_error(self, shell, tmp_path):
        grid, sh = shell
        code, out = sh.run(f"Sbload {tmp_path} .")
        assert code == 1
        assert "no files" in out

    def test_put_with_resource_and_type(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "x.txt"
        local.write_bytes(b"x")
        ok(sh, f"Sput -R logrsrc1 -D 'ascii text' {local} x.txt")
        info = ok(sh, "SgetD x.txt")
        assert "replica 1" in info and "replica 2" in info
        assert "ascii text" in info

    def test_ls_long(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"12345")
        ok(sh, f"Sput {local} f.dat")
        out = ok(sh, "Sls -l")
        assert "f.dat" in out and "5" in out and "sekar@sdsc" in out

    def test_cp_mv_rm(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"data")
        ok(sh, f"Sput {local} a.txt")
        ok(sh, "Scp a.txt b.txt")
        ok(sh, "Smv b.txt c.txt")
        assert ok(sh, "Scat c.txt") == "data"
        ok(sh, "Srm a.txt")
        code, _ = sh.run("Scat a.txt")
        assert code == 1

    def test_link(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"linked")
        ok(sh, f"Sput {local} orig.txt")
        ok(sh, "Sln orig.txt alias.txt")
        assert ok(sh, "Scat alias.txt") == "linked"

    def test_phymove(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"m")
        ok(sh, f"Sput -R unix-sdsc {local} m.txt")
        ok(sh, "Sphymove -R unix-caltech m.txt")
        assert "unix-caltech" in ok(sh, "SgetD m.txt")


class TestReplicaCommands:
    def test_replicate_sync_verify(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"r")
        ok(sh, f"Sput {local} r.txt")
        assert ok(sh, "Sreplicate -R unix-caltech r.txt") == "replica 2"
        out = ok(sh, "Sverify r.txt")
        assert out.count("ok") == 2
        ok(sh, "Ssync r.txt")

    def test_get_specific_replica(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"content")
        ok(sh, f"Sput -R logrsrc1 {local} two.txt")
        assert ok(sh, "Sget -n 2 two.txt") == "content"

    def test_replicate_needs_resource_flag(self, shell):
        grid, sh = shell
        code, out = sh.run("Sreplicate r.txt")
        assert code == 1 and "usage" in out


class TestMetadataCommands:
    def test_meta_add_ls_rm(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"x")
        ok(sh, f"Sput {local} m.txt")
        out = ok(sh, "Smeta add m.txt wingspan 1.2 m")
        mid = int(out.split()[1])
        listing = ok(sh, "Smeta ls m.txt")
        assert "wingspan = 1.2 (m)" in listing
        ok(sh, f"Smeta rm m.txt {mid}")
        assert "wingspan" not in ok(sh, "Smeta ls m.txt")

    def test_query(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"x")
        ok(sh, f"Sput {local} q.txt")
        ok(sh, "Smeta add q.txt species ibis")
        out = ok(sh, "Squery species = ibis")
        assert "q.txt" in out and "(1 hits)" in out

    def test_query_multiple_conditions(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"x")
        ok(sh, f"Sput {local} q2.txt")
        ok(sh, "Smeta add q2.txt species ibis")
        ok(sh, "Smeta add q2.txt wingspan 1.4")
        out = ok(sh, "Squery species = ibis wingspan > 1.2")
        assert "(1 hits)" in out
        out = ok(sh, "Squery species = ibis wingspan > 1.5")
        assert "(0 hits)" in out

    def test_query_bad_operator(self, shell):
        grid, sh = shell
        code, out = sh.run("Squery a ~= b")
        assert code == 1

    def test_attrs(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"x")
        ok(sh, f"Sput {local} at.txt")
        ok(sh, "Smeta add at.txt colour green")
        assert "colour" in ok(sh, "Sattrs")

    def test_annotate(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"x")
        ok(sh, f"Sput {local} an.txt")
        ok(sh, "Sannotate -t rating an.txt five stars")
        anns = grid.curator.annotations(f"{grid.home}/an.txt")
        assert anns[0]["text"] == "five stars"

    def test_meta_extract(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "h.fits"
        local.write_bytes(b"SIMPLE  = T\nRA      = 12.5\nEND\n")
        ok(sh, f"Sput -D 'fits image' {local} h.fits")
        out = ok(sh, "Smeta extract h.fits 'fits header'")
        assert "extracted" in out
        assert "RA = 12.5" in ok(sh, "Smeta ls h.fits")


class TestAdminCommands:
    def test_chmod_grant_revoke(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"s")
        ok(sh, f"Sput {local} g.txt")
        ok(sh, "Schmod grant g.txt * read")
        anon = SrbClient(grid.fed, "laptop", "srb1")
        assert anon.get(f"{grid.home}/g.txt") == b"s"
        ok(sh, "Schmod revoke g.txt *")
        from repro.errors import AccessDenied
        with pytest.raises(AccessDenied):
            anon.get(f"{grid.home}/g.txt")

    def test_audit_admin_only(self, shell):
        grid, sh = shell
        code, out = sh.run("Saudit")
        assert code == 1                      # curator cannot read audit
        admin_sh = Shell(SrbClient(grid.fed, "sdsc", "srb1"))
        admin_sh.run("Sinit srbadmin@sdsc hunter2")
        code, out = admin_sh.run("Saudit -a login")
        assert code == 0 and "sekar@sdsc" in out

    def test_lock_unlock(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"l")
        ok(sh, f"Sput {local} l.txt")
        ok(sh, "Slock -e l.txt")
        assert "1 lock(s) released" in ok(sh, "Sunlock l.txt")

    def test_checkout_checkin(self, shell, tmp_path):
        grid, sh = shell
        v1 = tmp_path / "v1"
        v1.write_bytes(b"one")
        v2 = tmp_path / "v2"
        v2.write_bytes(b"two")
        ok(sh, f"Sput {v1} v.txt")
        ok(sh, "Scheckout v.txt")
        assert ok(sh, f"Scheckin v.txt {v2}") == "version 2"
        assert ok(sh, "Scat v.txt") == "two"

    def test_container_commands(self, shell, tmp_path):
        grid, sh = shell
        grid.fed.add_logical_resource("shellres",
                                      ["unix-sdsc", "hpss-caltech"])
        ok(sh, "Smkcont -R shellres box")
        local = tmp_path / "f"
        local.write_bytes(b"member")
        ok(sh, f"Sput -c box {local} member.txt")
        assert ok(sh, "Scat member.txt") == "member"
        assert "1 replica(s) refreshed" in ok(sh, "Ssyncont box")

    def test_register_url_and_sql(self, shell):
        grid, sh = shell
        grid.fed.web.publish("http://x.org/page", b"web content")
        ok(sh, "Sregister url page http://x.org/page")
        assert ok(sh, "Scat page") == "web content"
        from repro.db import Column
        drv = grid.fed.resources.physical("dlib1").driver
        t = drv.create_user_table("vals", [Column("v", "TEXT")])
        t.insert({"v": "db-row"})
        ok(sh, "Sregister sql view dlib1 SELECT v FROM vals -T XMLREL")
        assert "db-row" in ok(sh, "Scat view")

    def test_pin_unpin(self, shell, tmp_path):
        grid, sh = shell
        local = tmp_path / "f"
        local.write_bytes(b"p")
        ok(sh, f"Sput -R hpss-caltech {local} p.txt")
        ok(sh, "Spin -R hpss-caltech p.txt")
        drv = grid.fed.resources.physical("hpss-caltech").driver
        assert drv.purge_cache() == 0
        ok(sh, "Sunpin -R hpss-caltech p.txt")
        assert drv.purge_cache() == 1


class TestContainerCompaction:
    def test_scompact(self, shell, tmp_path):
        grid, sh = shell
        grid.fed.add_logical_resource("compres", ["unix-sdsc"])
        ok(sh, "Smkcont -R compres cbox")
        v1 = tmp_path / "v1"; v1.write_bytes(b"0123456789")
        v2 = tmp_path / "v2"; v2.write_bytes(b"new")
        ok(sh, f"Sput -c cbox {v1} cm.txt")
        # overwrite via checkout/checkin to exercise the update path
        ok(sh, "Scheckout cm.txt")
        ok(sh, f"Scheckin cm.txt {v2}")
        out = ok(sh, "Scompact cbox")
        assert "10 byte(s) reclaimed" in out
        assert ok(sh, "Scat cm.txt") == "new"


class TestDumpCommand:
    def test_sdump_admin_only(self, shell, tmp_path):
        grid, sh = shell
        code, out = sh.run(f"Sdump {tmp_path}/cat.json")
        assert code == 1                     # curator refused
        admin_sh = Shell(SrbClient(grid.fed, "sdsc", "srb1"))
        admin_sh.run("Sinit srbadmin@sdsc hunter2")
        code, out = admin_sh.run(f"Sdump {tmp_path}/cat.json")
        assert code == 0 and "bytes ->" in out
        # the dump round-trips
        from repro.mcat.dump import import_catalog
        restored = import_catalog((tmp_path / "cat.json").read_text())
        assert restored.zone == "demozone"
        assert restored.collection_exists(grid.home)


class TestObservability:
    def test_sstat_summary_and_prefix(self, shell):
        grid, sh = shell
        out = ok(sh, "Sstat")
        assert "messages:" in out            # federation summary
        assert "rpc.calls" in out            # metrics registry
        out = ok(sh, "Sstat net")
        assert "net.messages" in out and "rpc.calls" not in out
        assert ok(sh, "Sstat no.such.metric") == "(no matching metrics)"

    def test_strace_wraps_a_command(self, shell):
        grid, sh = shell
        out = ok(sh, f"Strace Sls {grid.home}")
        assert "scommand line=Sls" in out
        assert "rpc.call" in out and "net.transfer" in out

    def test_strace_reports_inner_failure(self, shell):
        grid, sh = shell
        out = ok(sh, "Strace Scat /demozone/nope.dat")
        assert "(exit 1)" in out
        assert "scommand" in out             # the tree still renders

    def test_strace_needs_a_command(self, shell):
        grid, sh = shell
        code, out = sh.run("Strace")
        assert code == 1

    def test_sdispatch_lists_the_registry(self, shell):
        grid, sh = shell
        out = ok(sh, "Sdispatch")
        srv = grid.fed.server("srb1")
        for name in srv.dispatch.names():
            assert name in out
        out = ok(sh, "Sdispatch replica")
        assert "replicate" in out and "mkcoll" not in out
        code, out = sh.run("Sdispatch bogus")
        assert code == 1 and "no plane" in out
