"""The overlapped data plane (Federation(parallel_fanout=True)).

Logical-resource ingest fan-out, parallel replica refresh, bulk-get
overlap and striped reads all ride on
:class:`repro.net.simnet.TransferGroup`; these tests check both the
correctness (same bytes, same catalog state as the serial plane) and the
cost shape (makespan, not sum).  The rollback tests cover the satellite
bugfix: cleanup of half-written logical-resource members is charged on
the wire.
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import ResourceUnavailable

PAYLOAD = bytes(range(256)) * 4096          # 1 MiB


def build_fed(n_hosts=3, **knobs):
    fed = Federation(zone="z", **knobs)
    for i in range(1, n_hosts + 1):
        fed.add_host(f"h{i}")
    fed.add_server("s1", "h1", mcat=True)
    for i in range(1, n_hosts + 1):
        fed.add_fs_resource(f"r{i}", f"h{i}")
    fed.add_logical_resource("all", [f"r{i}"
                                     for i in range(1, n_hosts + 1)])
    fed.default_resource = "r1"
    fed.bootstrap_admin()
    client = SrbClient(fed, "h1", "s1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/z/w")
    return fed, client


def timed(fed, fn):
    t0 = fed.clock.now
    result = fn()
    return result, fed.clock.now - t0


class TestIngestFanout:
    def test_same_catalog_and_bytes_as_serial(self):
        par_fed, par_client = build_fed(parallel_fanout=True)
        ser_fed, ser_client = build_fed(parallel_fanout=False)
        for client in (par_client, ser_client):
            client.ingest("/z/w/f.dat", PAYLOAD, resource="all")
        for fed, client in ((par_fed, par_client), (ser_fed, ser_client)):
            obj = fed.mcat.get_object("/z/w/f.dat")
            assert len(fed.mcat.replicas(int(obj["oid"]))) == 3
            assert client.get("/z/w/f.dat") == PAYLOAD

    def test_fanout_charges_makespan_not_sum(self):
        par_fed, par_client = build_fed(parallel_fanout=True)
        ser_fed, ser_client = build_fed(parallel_fanout=False)
        _, par_t = timed(par_fed, lambda: par_client.ingest(
            "/z/w/f.dat", PAYLOAD, resource="all"))
        _, ser_t = timed(ser_fed, lambda: ser_client.ingest(
            "/z/w/f.dat", PAYLOAD, resource="all"))
        # two remote members overlap: roughly one member push saved
        wire_one = par_fed.network.link("h1", "h2").cost(len(PAYLOAD))
        assert ser_t - par_t == pytest.approx(wire_one, rel=0.05)
        assert par_fed.obs.metrics.get("net.parallel.groups",
                                       label="ingest-fanout") == 1

    def test_down_member_fails_whole_ingest_cleanly(self):
        fed, client = build_fed(parallel_fanout=True)
        fed.network.set_down("h3")
        with pytest.raises(ResourceUnavailable):
            client.ingest("/z/w/f.dat", PAYLOAD, resource="all")
        assert fed.mcat.find_object("/z/w/f.dat") is None


class TestRollbackCharged:
    def test_rollback_charges_one_delete_message_per_remote_member(self):
        fed, _client = build_fed()
        srv = fed.server("s1")
        r1 = fed.resources.physical("r1")        # local to s1
        r2 = fed.resources.physical("r2")        # remote
        r3 = fed.resources.physical("r3")        # remote
        for res in (r1, r2, r3):
            res.driver.create("/half", b"partial")
        before = fed.network.messages_sent
        srv.data._rollback_created([(r1, "/half"), (r2, "/half"),
                                    (r3, "/half")])
        assert fed.network.messages_sent == before + 2   # r2, r3 only
        for res in (r1, r2, r3):
            assert not res.driver.exists("/half")

    def test_failed_serial_ingest_charges_remote_cleanup(self):
        """End to end: member 3 down -> members 1 and 2 are rolled back,
        and member 2's remote delete appears in net.messages."""
        fed, client = build_fed(parallel_fanout=False)
        fed.network.set_down("h3")
        m = fed.obs.metrics
        before = m.get("net.messages", src="h1", dst="h2")
        with pytest.raises(ResourceUnavailable):
            client.ingest("/z/w/f.dat", PAYLOAD, resource="all")
        after = m.get("net.messages", src="h1", dst="h2")
        # session open + push + rollback delete = 3 messages to h2
        assert after - before == 3
        for name in ("r1", "r2"):
            driver = fed.resources.physical(name).driver
            assert not any("f.dat" in p for p in driver.list_dir("/"))

    def test_unreachable_member_skipped_during_rollback(self):
        fed, _client = build_fed()
        srv = fed.server("s1")
        r2 = fed.resources.physical("r2")
        r2.driver.create("/half", b"partial")
        fed.network.set_down("h2")
        before = fed.network.failed_attempts
        srv.data._rollback_created([(r2, "/half")])
        assert fed.network.failed_attempts == before + 1
        assert r2.driver.exists("/half")     # orphan, documented


class TestParallelSynchronize:
    def _make_dirty(self, client):
        client.ingest("/z/w/f.dat", PAYLOAD, resource="all")
        client.put("/z/w/f.dat", PAYLOAD[::-1])

    def test_refresh_correct_and_overlapped(self):
        par_fed, par_client = build_fed(parallel_fanout=True)
        ser_fed, ser_client = build_fed(parallel_fanout=False)
        self._make_dirty(par_client)
        self._make_dirty(ser_client)
        (par_n, par_t) = timed(par_fed,
                               lambda: par_client.synchronize("/z/w/f.dat"))
        (ser_n, ser_t) = timed(ser_fed,
                               lambda: ser_client.synchronize("/z/w/f.dat"))
        assert par_n == ser_n == 2
        assert par_t < ser_t
        for fed in (par_fed, ser_fed):
            obj = fed.mcat.get_object("/z/w/f.dat")
            assert all(not r["is_dirty"]
                       for r in fed.mcat.replicas(int(obj["oid"])))
        assert par_fed.obs.metrics.get("net.parallel.groups",
                                       label="synchronize") == 1

    def test_single_dirty_member_stays_serial(self):
        fed, client = build_fed(n_hosts=2, parallel_fanout=True)
        fed.add_logical_resource("pair", ["r1", "r2"])
        client.ingest("/z/w/g.dat", PAYLOAD, resource="pair")
        client.put("/z/w/g.dat", PAYLOAD[::-1])
        assert client.synchronize("/z/w/g.dat") == 1
        assert fed.obs.metrics.get("net.parallel.groups",
                                   label="synchronize") == 0


class TestBulkGetOverlap:
    def _setup(self, **knobs):
        fed, client = build_fed(**knobs)
        client.ingest("/z/w/a.dat", PAYLOAD, resource="r2")
        client.ingest("/z/w/b.dat", PAYLOAD, resource="r3")
        return fed, client

    def test_results_identical_to_serial(self):
        par_fed, par_client = self._setup(parallel_fanout=True)
        ser_fed, ser_client = self._setup(parallel_fanout=False)
        par = par_client.bulk_get(["/z/w/a.dat", "/z/w/b.dat"])
        ser = ser_client.bulk_get(["/z/w/a.dat", "/z/w/b.dat"])
        assert par == ser
        assert all(r["data"] == PAYLOAD for r in par)

    def test_distinct_hosts_overlap(self):
        par_fed, par_client = self._setup(parallel_fanout=True)
        ser_fed, ser_client = self._setup(parallel_fanout=False)
        _, par_t = timed(par_fed, lambda: par_client.bulk_get(
            ["/z/w/a.dat", "/z/w/b.dat"]))
        _, ser_t = timed(ser_fed, lambda: ser_client.bulk_get(
            ["/z/w/a.dat", "/z/w/b.dat"]))
        assert par_t < ser_t
        assert par_fed.obs.metrics.get("net.parallel.groups",
                                       label="bulk-get") == 1

    def test_down_host_yields_per_item_error(self):
        fed, client = self._setup(parallel_fanout=True)
        fed.network.set_down("h3")
        results = client.bulk_get(["/z/w/a.dat", "/z/w/b.dat"])
        assert results[0]["data"] == PAYLOAD
        assert "error" in results[1]
        assert results[1]["error_type"] in ("HostUnreachable",
                                            "ReplicaUnavailable")


class TestStripedGet:
    def _setup(self, **knobs):
        fed, client = build_fed(**knobs)
        client.ingest("/z/w/big.dat", PAYLOAD, resource="r2")
        client.replicate("/z/w/big.dat", "r3")
        return fed, client

    def test_striped_read_returns_same_bytes(self):
        fed, client = self._setup()
        assert client.get("/z/w/big.dat", stripes=2) == PAYLOAD
        assert fed.obs.metrics.get("srb.striped_reads", stripes="2") == 1

    def test_striped_read_is_faster(self):
        fed_a, client_a = self._setup()
        fed_b, client_b = self._setup()
        _, plain_t = timed(fed_a, lambda: client_a.get("/z/w/big.dat"))
        _, striped_t = timed(fed_b, lambda: client_b.get("/z/w/big.dat",
                                                         stripes=2))
        assert striped_t < plain_t

    def test_more_stripes_than_replicas_clamps(self):
        fed, client = self._setup()
        assert client.get("/z/w/big.dat", stripes=8) == PAYLOAD
        assert fed.obs.metrics.get("srb.striped_reads", stripes="2") == 1

    def test_single_replica_falls_back_to_chain_walk(self):
        fed, client = build_fed()
        client.ingest("/z/w/one.dat", PAYLOAD, resource="r2")
        assert client.get("/z/w/one.dat", stripes=4) == PAYLOAD
        assert fed.obs.metrics.total("srb.striped_reads") == 0

    def test_partitioned_replica_falls_back(self):
        fed, client = self._setup()
        fed.network.partition("h1", "h3")
        assert client.get("/z/w/big.dat", stripes=2) == PAYLOAD
        assert fed.obs.metrics.total("srb.striped_reads") == 0

    def test_replica_num_pins_and_disables_striping(self):
        fed, client = self._setup()
        assert client.get("/z/w/big.dat", replica_num=1,
                          stripes=2) == PAYLOAD
        assert fed.obs.metrics.total("srb.striped_reads") == 0
