"""Unit tests for container aggregation."""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import (
    ContainerError,
    ResourceUnavailable,
    UnsupportedOperation,
)


@pytest.fixture
def env():
    fed = Federation(zone="demozone")
    fed.add_host("sdsc")
    fed.add_host("caltech")
    fed.add_server("srb1", "sdsc", mcat=True)
    fed.add_fs_resource("cache-sdsc", "sdsc", is_cache=True)
    fed.add_archive_resource("hpss-caltech", "caltech")
    fed.add_logical_resource("contres", ["cache-sdsc", "hpss-caltech"])
    fed.default_resource = "cache-sdsc"
    fed.bootstrap_admin()
    client = SrbClient(fed, "sdsc", "srb1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/demozone/data")
    return fed, client


class TestCreation:
    def test_container_has_replica_per_member(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        info = client.stat("/demozone/data/c1")
        assert info["kind"] == "container"
        assert {r["resource"] for r in info["replicas"]} == \
            {"cache-sdsc", "hpss-caltech"}

    def test_unknown_logical_resource(self, env):
        fed, client = env
        from repro.errors import NoSuchResource
        with pytest.raises(NoSuchResource):
            client.create_container("/demozone/data/c1", "ghostres")

    def test_get_container_rejects_plain_object(self, env):
        fed, client = env
        client.ingest("/demozone/data/plain", b"x")
        with pytest.raises(ContainerError):
            fed.containers.get_container("/demozone/data/plain")


class TestMembership:
    def test_ingest_into_container(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        client.ingest("/demozone/data/m2", b"beta",
                      container="/demozone/data/c1")
        assert client.get("/demozone/data/m1") == b"alpha"
        assert client.get("/demozone/data/m2") == b"beta"

    def test_members_share_physical_file(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        rep = client.stat("/demozone/data/m1")["replicas"][0]
        crep = client.stat("/demozone/data/c1")["replicas"][0]
        assert rep["physical_path"] == crep["physical_path"]
        assert rep["container_oid"] == client.stat("/demozone/data/c1")["oid"]

    def test_offsets_accumulate(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"12345",
                      container="/demozone/data/c1")
        client.ingest("/demozone/data/m2", b"678",
                      container="/demozone/data/c1")
        r1 = client.stat("/demozone/data/m1")["replicas"][0]
        r2 = client.stat("/demozone/data/m2")["replicas"][0]
        assert (r1["offset"], r1["size"]) == (0, 5)
        assert (r2["offset"], r2["size"]) == (5, 3)

    def test_container_size_tracks_total(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"12345",
                      container="/demozone/data/c1")
        client.ingest("/demozone/data/m2", b"678",
                      container="/demozone/data/c1")
        assert client.stat("/demozone/data/c1")["size"] == 8

    def test_container_overrides_resource(self, env):
        # "a container specification on ingestion overrides a resource"
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"x", resource="cache-sdsc",
                      container="/demozone/data/c1")
        rep = client.stat("/demozone/data/m1")["replicas"][0]
        assert rep["container_oid"] is not None

    def test_members_listed(self, env):
        fed, client = env
        coid = client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"a",
                      container="/demozone/data/c1")
        client.ingest("/demozone/data/m2", b"b",
                      container="/demozone/data/c1")
        assert len(fed.containers.members(coid)) == 2


class TestSyncAndFailover:
    def test_archive_copy_dirty_until_sync(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        reps = {r["resource"]: r for r in
                client.stat("/demozone/data/c1")["replicas"]}
        assert not reps["cache-sdsc"]["is_dirty"]
        assert reps["hpss-caltech"]["is_dirty"]
        assert client.sync_container("/demozone/data/c1") == 1
        reps = {r["resource"]: r for r in
                client.stat("/demozone/data/c1")["replicas"]}
        assert not reps["hpss-caltech"]["is_dirty"]

    def test_member_readable_from_archive_after_cache_loss(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        client.sync_container("/demozone/data/c1")
        fed.network.set_down("sdsc")   # cache host dies
        # read through the archive copy instead (server on sdsc is down too,
        # so drive the manager directly)
        member_rep = fed.mcat.replicas(
            fed.mcat.get_object("/demozone/data/m1")["oid"])[0]
        data = fed.containers.read_member(member_rep)
        assert data == b"alpha"

    def test_unsynced_archive_copy_not_served(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        fed.network.set_down("sdsc")   # only the dirty archive copy remains
        member_rep = fed.mcat.replicas(
            fed.mcat.get_object("/demozone/data/m1")["oid"])[0]
        with pytest.raises(ResourceUnavailable):
            fed.containers.read_member(member_rep)

    def test_sync_with_archive_down_raises(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"alpha",
                      container="/demozone/data/c1")
        fed.network.set_down("caltech")
        with pytest.raises(ResourceUnavailable):
            client.sync_container("/demozone/data/c1")


class TestRestrictions:
    def test_member_replication_unsupported(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"x",
                      container="/demozone/data/c1")
        with pytest.raises(UnsupportedOperation):
            client.replicate("/demozone/data/m1", "cache-sdsc")

    def test_member_physical_move_unsupported(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"x",
                      container="/demozone/data/c1")
        with pytest.raises(UnsupportedOperation):
            client.physical_move("/demozone/data/m1", "cache-sdsc")

    def test_member_put_updates_in_place(self, env):
        # "tarfiles but with more flexibility in accessing and updating"
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"x",
                      container="/demozone/data/c1")
        client.put("/demozone/data/m1", b"updated-bytes")
        assert client.get("/demozone/data/m1") == b"updated-bytes"

    def test_container_with_members_not_deletable(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.ingest("/demozone/data/m1", b"x",
                      container="/demozone/data/c1")
        with pytest.raises(ContainerError):
            client.delete("/demozone/data/c1")

    def test_empty_container_deletable(self, env):
        fed, client = env
        client.create_container("/demozone/data/c1", "contres")
        client.delete("/demozone/data/c1")
        from repro.errors import NoSuchObject
        with pytest.raises(NoSuchObject):
            client.stat("/demozone/data/c1")
