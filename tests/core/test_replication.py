"""Unit tests for replica selection, failover chains and synchronization."""

import pytest

from repro.core.replication import (
    ReplicaSelector,
    pick_clean_available,
    synchronize,
)
from repro.errors import ReplicaUnavailable, ReplicationError
from repro.mcat import Mcat
from repro.net.simnet import LAN, WAN, Network
from repro.storage.memfs import MemFsDriver
from repro.storage.resource import PhysicalResource, ResourceRegistry


@pytest.fixture
def env():
    net = Network()
    for h in ("near", "far", "client"):
        net.add_host(h)
    net.set_link("client", "near", LAN)
    net.set_link("client", "far", WAN)
    reg = ResourceRegistry(net)
    reg.add_physical(PhysicalResource("res-near", "near", MemFsDriver()))
    reg.add_physical(PhysicalResource("res-far", "far", MemFsDriver()))
    return net, reg


def fake_replicas():
    return [
        {"replica_num": 1, "resource": "res-near", "is_dirty": False,
         "container_oid": None, "physical_path": "/p1"},
        {"replica_num": 2, "resource": "res-far", "is_dirty": False,
         "container_oid": None, "physical_path": "/p2"},
    ]


class TestSelectorPolicies:
    def test_unknown_policy_rejected(self, env):
        net, reg = env
        with pytest.raises(ReplicationError):
            ReplicaSelector(reg, net, policy="quantum")

    def test_primary_order(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="primary")
        order = sel.order(fake_replicas())
        assert [r["replica_num"] for r in order] == [1, 2]

    def test_round_robin_rotates(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="round-robin")
        first = [r["replica_num"] for r in sel.order(fake_replicas())]
        second = [r["replica_num"] for r in sel.order(fake_replicas())]
        assert first != second
        assert sorted(first) == sorted(second) == [1, 2]

    def test_random_deterministic_and_complete(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="random")
        seen = set()
        for _ in range(20):
            order = [r["replica_num"] for r in sel.order(fake_replicas())]
            assert sorted(order) == [1, 2]
            seen.add(tuple(order))
        assert len(seen) == 2              # both rotations appear

    def test_random_is_a_real_shuffle(self, env):
        """Regression: the 'deterministic LCG shuffle' was a bare
        rotation, which reaches only n of the n! orderings — with three
        replicas, numbers adjacent in one chain stayed adjacent in all."""
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="random")
        reps = [{"replica_num": i, "resource": "res-near",
                 "is_dirty": False, "container_oid": None,
                 "physical_path": f"/p{i}"} for i in (1, 2, 3)]
        seen = set()
        for _ in range(200):
            seen.add(tuple(r["replica_num"] for r in sel.order(reps)))
        assert len(seen) == 6              # all 3! permutations appear

    def test_nearest_prefers_low_latency(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="nearest")
        order = sel.order(list(reversed(fake_replicas())),
                          from_host="client")
        assert order[0]["resource"] == "res-near"

    def test_nearest_without_host_falls_back(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net, policy="nearest")
        order = sel.order(fake_replicas())
        assert [r["replica_num"] for r in order] == [1, 2]

    def test_empty_list(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net)
        assert sel.order([]) == []


class TestFailoverChain:
    def test_skips_dirty(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net)
        reps = fake_replicas()
        reps[0]["is_dirty"] = True
        chain = pick_clean_available(sel, reg, reps)
        assert [r["replica_num"] for r in chain] == [2]

    def test_skips_down_resources(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net)
        net.set_down("near")
        chain = pick_clean_available(sel, reg, fake_replicas())
        assert [r["replica_num"] for r in chain] == [2]

    def test_raises_when_nothing_left(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net)
        net.set_down("near")
        net.set_down("far")
        with pytest.raises(ReplicaUnavailable):
            pick_clean_available(sel, reg, fake_replicas())

    def test_allow_dirty_flag(self, env):
        net, reg = env
        sel = ReplicaSelector(reg, net)
        reps = fake_replicas()
        for r in reps:
            r["is_dirty"] = True
        chain = pick_clean_available(sel, reg, reps, allow_dirty=True)
        assert len(chain) == 2


class TestSynchronize:
    @pytest.fixture
    def sync_env(self, env):
        net, reg = env
        mcat = Mcat()
        mcat.create_collection("/demozone/c", "u@d", now=0.0)
        oid = mcat.create_object("/demozone/c/x", "data", "u@d", now=0.0)
        near = reg.physical("res-near")
        far = reg.physical("res-far")
        near.driver.create("/p1", b"fresh data")
        far.driver.create("/p2", b"stale")
        mcat.add_replica(oid, "res-near", "/p1", 10, now=0.0)
        mcat.add_replica(oid, "res-far", "/p2", 5, now=0.0)
        mcat.mark_siblings_dirty(oid, 1)    # replica 2 becomes dirty
        return net, reg, mcat, oid

    def test_refreshes_dirty_copies(self, sync_env):
        net, reg, mcat, oid = sync_env
        assert synchronize(mcat, reg, net, oid) == 1
        assert reg.physical("res-far").driver.read("/p2") == b"fresh data"
        assert all(not r["is_dirty"] for r in mcat.replicas(oid))

    def test_noop_when_all_clean(self, sync_env):
        net, reg, mcat, oid = sync_env
        synchronize(mcat, reg, net, oid)
        assert synchronize(mcat, reg, net, oid) == 0

    def test_charges_network_for_cross_host_copy(self, sync_env):
        net, reg, mcat, oid = sync_env
        t0 = net.clock.now
        synchronize(mcat, reg, net, oid)
        assert net.clock.now > t0

    def test_no_clean_replica_raises(self, sync_env):
        net, reg, mcat, oid = sync_env
        # dirty both replicas via direct table surgery
        t = mcat.db.table("replicas")
        for rid in t.lookup_eq("oid", oid):
            t.update_row(rid, {"is_dirty": True})
        with pytest.raises(ReplicationError):
            synchronize(mcat, reg, net, oid)

    def test_unreachable_dirty_target_skipped(self, sync_env):
        net, reg, mcat, oid = sync_env
        net.set_down("far")
        assert synchronize(mcat, reg, net, oid) == 0
