"""The bulk data plane: server-side bulk_ingest / bulk_get /
bulk_query_metadata, and the ingest fixes that rode along with it
(physical rollback, batched metadata writes).
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import NoSuchResource, StorageFull


@pytest.fixture
def fedpair():
    """A federation with a logical resource whose second member is tiny,
    so a large-enough ingest fails mid-loop after the first write."""
    fed = Federation(zone="demozone")
    fed.add_host("sdsc")
    fed.add_server("srb1", "sdsc", mcat=True)
    fed.add_fs_resource("big", "sdsc")
    fed.add_fs_resource("tiny", "sdsc", capacity_bytes=100)
    fed.add_logical_resource("lr", ["big", "tiny"])
    fed.default_resource = "big"
    fed.bootstrap_admin()
    client = SrbClient(fed, "sdsc", "srb1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/demozone/home")
    client.mkcoll("/demozone/home/srbadmin")
    return fed, client


@pytest.fixture
def home(tiny_admin):
    tiny_admin.mkcoll("/demozone/home")
    tiny_admin.mkcoll("/demozone/home/srbadmin")
    return "/demozone/home/srbadmin"


class TestIngestRollback:
    def test_failed_logical_ingest_leaves_no_orphan_bytes(self, fedpair):
        """Regression: a mid-loop failure on a logical resource rolled
        back the catalog rows but left the file already written on the
        first member's driver — orphaned bytes no catalog row points to."""
        fed, client = fedpair
        big = fed.resources.physical("big").driver
        before = big.used_bytes()
        with pytest.raises(StorageFull):
            client.ingest("/demozone/home/srbadmin/blob.dat", b"x" * 4096,
                          resource="lr")
        assert big.used_bytes() == before
        assert client.stat("/demozone/home/srbadmin") is not None  # intact
        with pytest.raises(Exception):
            client.stat("/demozone/home/srbadmin/blob.dat")

    def test_successful_logical_ingest_unaffected(self, fedpair):
        fed, client = fedpair
        oid = client.ingest("/demozone/home/srbadmin/small.dat", b"x" * 10,
                            resource="lr")
        assert oid
        assert client.get("/demozone/home/srbadmin/small.dat") == b"x" * 10


class TestIngestMetadataBatched:
    def test_one_catalog_op_per_metadata_block(self, tiny_fed, tiny_admin, home):
        """The per-attribute ``add_metadata`` loop in ingest became one
        ``add_metadata_bulk`` call: ingest cost in ``mcat.ops`` is flat
        in the number of attributes, exactly one op above a bare ingest."""
        m = tiny_fed.mcat_server.mcat.obs.metrics

        before = m.get("mcat.ops")
        tiny_admin.ingest(f"{home}/bare.dat", b"x")
        bare_cost = m.get("mcat.ops") - before

        before = m.get("mcat.ops")
        tiny_admin.ingest(f"{home}/one.dat", b"x", metadata={"a": "1"})
        one_cost = m.get("mcat.ops") - before

        before = m.get("mcat.ops")
        tiny_admin.ingest(f"{home}/many.dat", b"x",
                          metadata={f"a{i}": str(i) for i in range(8)})
        many_cost = m.get("mcat.ops") - before

        assert one_cost == bare_cost + 1
        assert many_cost == one_cost


class TestBulkIngest:
    def test_results_aligned_and_readable(self, tiny_admin, home):
        items = [{"path": f"{home}/b{i}.dat", "data": b"%d" % i}
                 for i in range(6)]
        results = tiny_admin.bulk_ingest(items)
        assert [r["path"] for r in results] == [i["path"] for i in items]
        assert all("oid" in r for r in results)
        for i in range(6):
            assert tiny_admin.get(f"{home}/b{i}.dat") == b"%d" % i

    def test_catalog_state_matches_individual_ingests(self):
        def build(bulk):
            fed = Federation(zone="demozone")
            fed.add_host("sdsc")
            fed.add_server("srb1", "sdsc", mcat=True)
            fed.add_fs_resource("unix-sdsc", "sdsc")
            fed.default_resource = "unix-sdsc"
            fed.bootstrap_admin()
            c = SrbClient(fed, "sdsc", "srb1", "srbadmin@sdsc", "hunter2")
            c.login()
            c.mkcoll("/demozone/home")
            c.mkcoll("/demozone/home/srbadmin")
            items = [{"path": f"/demozone/home/srbadmin/f{i}.dat",
                      "data": b"D%d" % i, "metadata": {"idx": str(i)}}
                     for i in range(5)]
            if bulk:
                out = c.bulk_ingest(items)
                assert all("oid" in r for r in out)
            else:
                for it in items:
                    c.ingest(it["path"], it["data"],
                             metadata=it["metadata"])
            mcat = fed.mcat_server.mcat
            state = []
            for it in items:
                obj = mcat.get_object(it["path"])
                reps = [(r["replica_num"], r["resource"], r["size"])
                        for r in mcat.replicas(obj["oid"])]
                md = sorted((m["attr"], m["value"], m["meta_class"])
                            for m in mcat.get_metadata("object", obj["oid"]))
                state.append((it["path"], obj["kind"], obj["size"],
                              obj["checksum"], obj["owner"], reps, md))
            return state

        assert build(bulk=True) == build(bulk=False)

    def test_control_plane_messages_constant_in_n(self, tiny_fed,
                                                  tiny_admin, home):
        net = tiny_fed.network

        before = net.messages_sent
        tiny_admin.bulk_ingest([{"path": f"{home}/s{i}.dat", "data": b"x"}
                                for i in range(4)])
        small = net.messages_sent - before

        before = net.messages_sent
        tiny_admin.bulk_ingest([{"path": f"{home}/l{i}.dat", "data": b"x"}
                                for i in range(40)])
        large = net.messages_sent - before

        assert small == large          # O(1) round trips in batch size

    def test_per_item_failures_isolated(self, tiny_admin, home):
        tiny_admin.ingest(f"{home}/taken.dat", b"x")
        results = tiny_admin.bulk_ingest([
            {"path": f"{home}/ok1.dat", "data": b"a"},
            {"path": f"{home}/taken.dat", "data": b"b"},
            {"path": "/demozone/home/nobody/x.dat", "data": b"c"},
            {"path": f"{home}/ok2.dat", "data": b"d"},
        ])
        assert "oid" in results[0] and "oid" in results[3]
        assert results[1]["error_type"] == "AlreadyExists"
        assert results[2]["error_type"] == "NoSuchCollection"
        assert tiny_admin.get(f"{home}/taken.dat") == b"x"  # untouched

    def test_bad_resource_fails_whole_batch_cleanly(self, tiny_fed,
                                                    tiny_admin, home):
        count = tiny_fed.mcat_server.mcat.count_objects()
        with pytest.raises(NoSuchResource):
            tiny_admin.bulk_ingest([{"path": f"{home}/x.dat", "data": b"x"}],
                                   resource="no-such-res")
        assert tiny_fed.mcat_server.mcat.count_objects() == count

    def test_item_too_big_rolls_back_only_that_item(self, fedpair):
        fed, client = fedpair
        home = "/demozone/home/srbadmin"
        big = fed.resources.physical("big").driver
        results = client.bulk_ingest([
            {"path": f"{home}/fits1.dat", "data": b"x" * 10},
            {"path": f"{home}/huge.dat", "data": b"x" * 4096},
            {"path": f"{home}/fits2.dat", "data": b"x" * 10},
        ], resource="lr")
        assert "oid" in results[0] and "oid" in results[2]
        assert results[1]["error_type"] == "StorageFull"
        # the failed item's bytes on the first member were rolled back
        assert big.used_bytes() == 20
        assert client.get(f"{home}/fits1.dat") == b"x" * 10

    def test_bulk_ingest_into_container(self, grid):
        client, home = grid.curator, grid.home
        client.create_container(f"{home}/cont", "logrsrc1")
        items = [{"path": f"{home}/m{i}.dat", "data": b"M%d" % i * 50}
                 for i in range(4)]
        results = client.bulk_ingest(items, container=f"{home}/cont")
        assert all("oid" in r for r in results)
        for it in items:
            assert client.get(it["path"]) == it["data"]

    def test_metrics_emitted(self, tiny_fed, tiny_admin, home):
        m = tiny_fed.network.obs.metrics
        tiny_admin.bulk_ingest([{"path": f"{home}/mm{i}.dat", "data": b"x"}
                                for i in range(3)])
        assert m.get("bulk.batches", op="ingest") == 1
        assert m.get("bulk.items", op="ingest") == 3


class TestBulkGet:
    def test_round_trip(self, tiny_admin, home):
        items = [{"path": f"{home}/g{i}.dat", "data": b"G%d" % i}
                 for i in range(5)]
        tiny_admin.bulk_ingest(items)
        out = tiny_admin.bulk_get([i["path"] for i in items])
        assert [r["data"] for r in out] == [i["data"] for i in items]

    def test_missing_path_isolated(self, tiny_admin, home):
        tiny_admin.ingest(f"{home}/have.dat", b"here")
        out = tiny_admin.bulk_get([f"{home}/have.dat", f"{home}/miss.dat"])
        assert out[0]["data"] == b"here"
        assert out[1]["error_type"] == "NoSuchObject"

    def test_via_container_prefetches_members(self, grid):
        client, home = grid.curator, grid.home
        client.create_container(f"{home}/wset", "logrsrc1")
        items = [{"path": f"{home}/w{i}.dat", "data": b"W%d" % i * 100}
                 for i in range(6)]
        client.bulk_ingest(items, container=f"{home}/wset")
        out = client.bulk_get([i["path"] for i in items],
                              via_container=f"{home}/wset")
        assert [r["data"] for r in out] == [i["data"] for i in items]


class TestBulkQueryMetadata:
    def test_values_per_path(self, tiny_admin, home):
        tiny_admin.bulk_ingest(
            [{"path": f"{home}/q{i}.dat", "data": b"x",
              "metadata": {"idx": str(i)}} for i in range(4)])
        out = tiny_admin.bulk_query_metadata(
            [f"{home}/q{i}.dat" for i in range(4)])
        for i, row in enumerate(out):
            assert {(m["attr"], m["value"]) for m in row["metadata"]} \
                == {("idx", str(i))}

    def test_missing_path_isolated(self, tiny_admin, home):
        tiny_admin.ingest(f"{home}/qq.dat", b"x", metadata={"k": "v"})
        out = tiny_admin.bulk_query_metadata(
            [f"{home}/qq.dat", f"{home}/nope.dat"])
        assert out[0]["metadata"][0]["attr"] == "k"
        assert out[1]["error_type"] == "NoSuchObject"

    def test_one_catalog_read_for_n_paths(self, tiny_fed, tiny_admin, home):
        tiny_admin.bulk_ingest(
            [{"path": f"{home}/r{i}.dat", "data": b"x",
              "metadata": {"k": str(i)}} for i in range(6)])
        m = tiny_fed.mcat_server.mcat
        # per-item resolution + ACL checks are charged, but the metadata
        # rows themselves come back in ONE charged block, not six
        ops_before = m.obs.metrics.get("mcat.ops")
        tiny_admin.bulk_query_metadata([f"{home}/r{i}.dat"
                                        for i in range(6)])
        bulk_ops = m.obs.metrics.get("mcat.ops") - ops_before

        ops_before = m.obs.metrics.get("mcat.ops")
        for i in range(6):
            tiny_admin.get_metadata(f"{home}/r{i}.dat")
        loop_ops = m.obs.metrics.get("mcat.ops") - ops_before
        assert bulk_ops < loop_ops
