"""Client-side streaming surface: ``ls_page``/``iter_ls``,
``query_page``/``iter_query`` and the zero-overhead parity of the
materializing calls they page."""

import pytest

from repro.core import Federation, SrbClient


def build_fed():
    fed = Federation(zone="demozone")
    fed.add_host("sdsc")
    fed.add_server("srb1", "sdsc", mcat=True)
    fed.add_fs_resource("unix-sdsc", "sdsc")
    fed.default_resource = "unix-sdsc"
    fed.bootstrap_admin()
    client = SrbClient(fed, "sdsc", "srb1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/demozone/lab")
    client.mkcoll("/demozone/lab/sub")
    client.bulk_ingest([{"path": f"/demozone/lab/f{i:03d}.dat",
                         "data": b"x" * (10 + i)} for i in range(23)])
    client.ingest("/demozone/lab/sub/nested.dat", b"deep")
    for i in range(0, 23, 2):
        client.add_metadata(f"/demozone/lab/f{i:03d}.dat", "parity", "even")
    return fed, client


@pytest.fixture
def setup():
    return build_fed()


class TestListing:
    def test_ls_page_parity(self, setup):
        fed, client = setup
        full = client.ls("/demozone/lab")
        colls, objs, cursor = [], [], None
        while True:
            page = client.ls_page("/demozone/lab", limit=7, cursor=cursor)
            colls.extend(page["collections"])
            objs.extend(page["objects"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert colls == full["collections"]
        assert objs == full["objects"]

    def test_iter_ls_parity(self, setup):
        fed, client = setup
        full = client.ls("/demozone/lab")
        entries = list(client.iter_ls("/demozone/lab", page_size=6))
        assert [e["path"] for e in entries if e["kind"] == "collection"] \
            == full["collections"]
        assert [e for e in entries if e["kind"] != "collection"] \
            == full["objects"]

    def test_page_bounds_each_reply(self, setup):
        fed, client = setup
        page = client.ls_page("/demozone/lab", limit=5)
        assert len(page["collections"]) + len(page["objects"]) == 5
        assert page["next_cursor"] is not None


class TestQuery:
    CONDS = [{"attr": "parity", "op": "=", "value": "even"}]

    def _conds(self):
        from repro.mcat.query import Condition
        return [Condition("parity", "=", "even")]

    def test_query_page_parity(self, setup):
        fed, client = setup
        full = client.query("/demozone/lab", self._conds())
        rows, cursor = [], None
        while True:
            page = client.query_page("/demozone/lab", self._conds(),
                                     limit=4, cursor=cursor)
            assert page["columns"] == full.columns
            rows.extend(tuple(r) for r in page["rows"])
            cursor = page["next_cursor"]
            if cursor is None:
                break
        assert sorted(rows) == sorted(tuple(r) for r in full.rows)

    def test_iter_query_streams_rows(self, setup):
        fed, client = setup
        full = client.query("/demozone/lab", self._conds())
        calls0 = fed.rpc.stats.calls
        rows = [tuple(r) for r in client.iter_query(
            "/demozone/lab", self._conds(), page_size=5)]
        assert sorted(rows) == sorted(tuple(r) for r in full.rows)
        assert fed.rpc.stats.calls - calls0 == 3    # 12 hits / 5 per page


class TestCursorlessParity:
    def test_streaming_leaves_materializing_costs_untouched(self):
        """Serial parity: a cursorless workload costs exactly the same
        on a federation that has exercised the streaming plane first —
        overhead must be 0.0, not just small."""
        def workload_cost(fed, client):
            t0, b0 = fed.clock.now, fed.rpc.stats.response_bytes
            client.ls("/demozone/lab")
            client.query("/demozone/lab",
                         [__import__("repro.mcat.query",
                                     fromlist=["Condition"]).Condition(
                                         "parity", "=", "even")])
            return fed.clock.now - t0, fed.rpc.stats.response_bytes - b0

        fed_a, client_a = build_fed()
        fed_b, client_b = build_fed()
        # fed B runs the paged/streaming surface first
        for _ in client_b.iter_ls("/demozone/lab", page_size=4):
            pass
        client_b.query_page("/demozone/lab", [], limit=3)
        cost_a = workload_cost(fed_a, client_a)
        cost_b = workload_cost(fed_b, client_b)
        assert cost_a == cost_b
