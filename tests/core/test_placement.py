"""Federation-level placement engine integration.

The engine is constructed once per federation and every chooser —
replica reads, write placement, striping — flows through it.  These
tests pin the federation wiring: one shared policy state per
federation (the round-robin regression), the ``placement=`` knob,
``stripes="auto"`` end to end, and the observed policy actually
steering live traffic off a slow path.
"""

import pytest

from repro.core import Federation, SrbClient
from repro.errors import ReplicationError
from repro.net.simnet import LinkSpec

PAYLOAD = bytes(range(256)) * 2048          # 512 KiB


def build_fed(n_hosts=3, **knobs):
    fed = Federation(zone="z", **knobs)
    for i in range(1, n_hosts + 1):
        fed.add_host(f"h{i}")
    fed.add_server("s1", "h1", mcat=True)
    for i in range(1, n_hosts + 1):
        fed.add_fs_resource(f"r{i}", f"h{i}")
    fed.default_resource = "r1"
    fed.bootstrap_admin()
    client = SrbClient(fed, "h1", "s1", "srbadmin@sdsc", "hunter2")
    client.login()
    client.mkcoll("/z/w")
    return fed, client


def replicate_everywhere(client, path, n_hosts=3):
    client.ingest(path, PAYLOAD, resource="r1")
    for i in range(2, n_hosts + 1):
        client.replicate(path, f"r{i}")


def timed(fed, fn):
    t0 = fed.clock.now
    result = fn()
    return result, fed.clock.now - t0


class TestFederationWiring:
    def test_default_placement_is_primary(self):
        fed, _ = build_fed()
        assert fed.placement.policy_name == "primary"
        # legacy surface still answers
        assert fed.selector.policy == "primary"

    def test_selection_policy_still_routes_to_the_engine(self):
        fed, _ = build_fed(selection_policy="nearest")
        assert fed.placement.policy_name == "nearest"
        assert fed.selector.policy == "nearest"

    def test_placement_knob_wins(self):
        fed, _ = build_fed(placement="observed")
        assert fed.placement.policy_name == "observed"

    def test_unknown_placement_rejected(self):
        with pytest.raises(ReplicationError):
            Federation(zone="z", placement="bogus")

    def test_stats_expose_placement_state(self):
        fed, client = build_fed(placement="observed")
        replicate_everywhere(client, "/z/w/f.dat")
        client.get("/z/w/f.dat")
        stats = fed.stats()
        assert stats["placement"] == "observed"
        assert stats["placement_paths"] > 0
        assert stats["placement_decisions"] > 0

    def test_path_report_reflects_real_traffic(self):
        fed, client = build_fed()
        replicate_everywhere(client, "/z/w/f.dat")
        paths = {(p["src"], p["dst"]): p
                 for p in fed.placement.path_report()}
        # the replicate pushed h1 -> h2 and h1 -> h3 on the wire
        assert ("h1", "h2") in paths and ("h1", "h3") in paths
        assert paths[("h1", "h2")]["bytes"] >= len(PAYLOAD)


class TestRoundRobinPersistsPerFederation:
    """Regression: rotation state must live on the federation, not be
    rebuilt per request — two successive reads start at different
    replicas."""

    def test_successive_reads_rotate(self):
        fed, client = build_fed(placement="round-robin")
        replicate_everywhere(client, "/z/w/f.dat")
        client.get("/z/w/f.dat")            # warm session caches
        times = [timed(fed, lambda: client.get("/z/w/f.dat"))[1]
                 for _ in range(6)]
        # replica 1 is local to the server host h1, replicas 2/3 remote:
        # a persistent rotation counter makes successive reads hit
        # different replicas (different costs), repeating with period 3.
        # A counter rebuilt per request would serve replica 1 every time.
        assert len({round(t, 9) for t in times[:3]}) > 1
        for i in range(3):
            assert times[i] == pytest.approx(times[i + 3])


class TestObservedSteering:
    def test_traffic_moves_off_the_slow_path(self):
        fed, client = build_fed(placement="observed")
        slow = LinkSpec(latency_s=0.040, bandwidth_bps=1e6)
        fast = LinkSpec(latency_s=0.050, bandwidth_bps=2e7)
        fed.network.set_link("h1", "h2", slow)
        fed.network.set_link("h1", "h3", fast)
        client.ingest("/z/w/f.dat", PAYLOAD, resource="r2")
        client.replicate("/z/w/f.dat", "r3")
        # warm the predictor, then measure steady-state reads
        for _ in range(3):
            client.get("/z/w/f.dat")
        _, t = timed(fed, lambda: client.get("/z/w/f.dat"))
        # a read forced onto the slow replica is the counterfactual
        _, t_slow = timed(fed,
                          lambda: client.get("/z/w/f.dat",
                                             replica_num=1))
        assert t < t_slow / 2
        # steered reads pull from h3; the fast wire dominates the cost
        assert t >= fast.cost(len(PAYLOAD))
        assert t < slow.cost(len(PAYLOAD))


class TestAutoStripes:
    def test_auto_get_returns_the_bytes_and_records_the_pick(self):
        fed, client = build_fed(n_hosts=4, parallel_fanout=True)
        # all replicas remote from the server host, so the model runs
        client.ingest("/z/w/f.dat", PAYLOAD, resource="r2")
        for r in ("r3", "r4"):
            client.replicate("/z/w/f.dat", r)
        data = client.get("/z/w/f.dat", stripes="auto")
        assert data == PAYLOAD
        assert fed.obs.metrics.total("policy.auto_stripes") == 1

    def test_auto_short_circuits_on_a_local_replica(self):
        fed, client = build_fed(parallel_fanout=True)
        replicate_everywhere(client, "/z/w/f.dat")
        client.get("/z/w/f.dat")            # warm session caches
        # replica 1 lives on the server host: a free local read beats
        # any wire pull, so auto skips the model entirely (k=1)
        m0 = fed.network.messages_sent
        _, t_auto = timed(fed,
                          lambda: client.get("/z/w/f.dat",
                                             stripes="auto"))
        m_auto = fed.network.messages_sent - m0
        _, t_plain = timed(fed, lambda: client.get("/z/w/f.dat"))
        m_plain = fed.network.messages_sent - m0 - m_auto
        # same wire shape as a plain read; the only extra cost is the
        # catalog lookup deciding k=1 (well under a millisecond)
        assert m_auto == m_plain
        assert t_auto == pytest.approx(t_plain, abs=1e-3)
        assert fed.obs.metrics.total("policy.auto_stripes") == 0

    def test_auto_beats_the_serial_pull_on_remote_replicas(self):
        fed, client = build_fed(n_hosts=4, parallel_fanout=True)
        client.ingest("/z/w/f.dat", PAYLOAD, resource="r2")
        for r in ("r3", "r4"):
            client.replicate("/z/w/f.dat", r)
        _, t_auto = timed(fed,
                          lambda: client.get("/z/w/f.dat",
                                             stripes="auto"))
        _, t_serial = timed(fed, lambda: client.get("/z/w/f.dat"))
        assert t_auto < t_serial
