"""Keyset pagination at the SQL layer (``Database.execute_page``)."""

import pytest

from repro.db import Column, Database
from repro.errors import DatabaseError
from repro.util.clock import SimClock


@pytest.fixture
def db():
    db = Database()
    t = db.create_table("items", [
        Column("id", "INT", nullable=False), Column("name", "TEXT"),
        Column("score", "INT")], primary_key="id")
    t.create_index("id", unique=True, sorted_index=True)
    for i in range(1, 51):
        t.insert({"id": i, "name": f"n{i:03d}", "score": i % 7})
    return db


def drain(db, sql, limit):
    """All rows of ``sql`` through the cursor loop, counting pages."""
    rows, cursor, pages = [], None, 0
    while True:
        rs, cursor = db.execute_page(sql, cursor=cursor, limit=limit)
        rows.extend(rs.rows)
        pages += 1
        if cursor is None:
            return rows, pages


class TestPaging:
    def test_parity_with_execute(self, db):
        sql = "SELECT id, name FROM items ORDER BY id"
        rows, _pages = drain(db, sql, limit=7)
        assert rows == db.execute(sql).rows

    def test_parity_with_residual_where(self, db):
        sql = "SELECT id FROM items WHERE score = 3 ORDER BY id"
        rows, _pages = drain(db, sql, limit=2)
        assert rows == db.execute(sql).rows

    def test_page_size_respected(self, db):
        rs, cursor = db.execute_page(
            "SELECT id FROM items ORDER BY id", limit=10)
        assert len(rs.rows) == 10
        assert cursor == 10       # the last delivered key

    def test_cursor_resumes_strictly_after(self, db):
        rs1, c1 = db.execute_page(
            "SELECT id FROM items ORDER BY id", limit=5)
        rs2, _c2 = db.execute_page(
            "SELECT id FROM items ORDER BY id", cursor=c1, limit=5)
        assert [r[0] for r in rs1.rows] == [1, 2, 3, 4, 5]
        assert [r[0] for r in rs2.rows] == [6, 7, 8, 9, 10]

    def test_exact_fit_ends_without_trailing_page(self, db):
        # 50 rows in pages of 10: the fifth page must come back with
        # next_cursor None, not dangle an empty sixth page
        _rows, pages = drain(db, "SELECT id FROM items ORDER BY id", 10)
        assert pages == 5

    def test_empty_result(self, db):
        rs, cursor = db.execute_page(
            "SELECT id FROM items WHERE score = 99 ORDER BY id", limit=5)
        assert rs.rows == [] and cursor is None


class TestCharging:
    def test_page_charges_o_page_not_o_table(self):
        def build():
            db = Database(clock=SimClock())
            t = db.create_table("big", [Column("id", "INT")],
                                primary_key="id")
            t.create_index("id", unique=True, sorted_index=True)
            for i in range(2000):
                t.insert({"id": i})
            return db

        paged, full = build(), build()
        t0 = paged.clock.now
        paged.execute_page("SELECT id FROM big ORDER BY id", limit=10)
        page_cost = paged.clock.now - t0
        t0 = full.clock.now
        full.execute("SELECT id FROM big ORDER BY id")
        full_cost = full.clock.now - t0
        assert page_cost < full_cost / 10


class TestRejections:
    @pytest.mark.parametrize("sql", [
        "SELECT id FROM items",                        # no ORDER BY
        "SELECT id FROM items ORDER BY id DESC",       # descending
        "SELECT id FROM items ORDER BY id, name",      # two keys
        "SELECT name FROM items ORDER BY name",        # non-unique key
        "SELECT score, COUNT(*) FROM items GROUP BY score ORDER BY score",
        "SELECT id FROM items ORDER BY id LIMIT 3",    # LIMIT clashes
    ])
    def test_rejected_shapes(self, db, sql):
        with pytest.raises(DatabaseError):
            db.execute_page(sql, limit=5)
