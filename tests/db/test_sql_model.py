"""Property-based differential test: the SQL engine vs a naive model.

Random small tables and random WHERE clauses are evaluated both by the
engine (with its index-driven planner) and by a direct Python
re-implementation of SQL three-valued logic.  Any divergence — planner
bug, index staleness, NULL mishandling — fails here.
"""

from typing import Any, List, Optional

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.db import Column, Database

COLUMNS = ("id", "grp", "score", "name")

row_strategy = st.fixed_dictionaries({
    "grp": st.one_of(st.none(), st.integers(0, 3)),
    "score": st.one_of(st.none(), st.floats(-5, 5, allow_nan=False,
                                            width=16)),
    "name": st.one_of(st.none(), st.sampled_from(["ann", "bob", "carol"])),
})

rows_strategy = st.lists(row_strategy, min_size=0, max_size=12)

# predicates as (column, op, literal) — literals typed to the column
predicate_strategy = st.one_of(
    st.tuples(st.just("grp"), st.sampled_from(["=", "<>", "<", ">", "<=",
                                               ">="]),
              st.integers(0, 3)),
    st.tuples(st.just("score"), st.sampled_from(["<", ">", "=", "<="]),
              st.floats(-5, 5, allow_nan=False, width=16)),
    st.tuples(st.just("name"), st.sampled_from(["=", "<>", "LIKE"]),
              st.sampled_from(["ann", "bob", "a%", "%o%"])),
)

clause_strategy = st.lists(
    st.tuples(predicate_strategy, st.sampled_from(["AND", "OR"])),
    min_size=1, max_size=3)


def build_db(rows: List[dict], index_on: Optional[str]) -> Database:
    db = Database()
    t = db.create_table("t", [
        Column("id", "INT", nullable=False),
        Column("grp", "INT"),
        Column("score", "FLOAT"),
        Column("name", "TEXT"),
    ], primary_key="id")
    if index_on:
        t.create_index(index_on, sorted_index=True)
    for i, row in enumerate(rows):
        t.insert({"id": i, **row})
    return db


def sql_literal(value: Any) -> str:
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


def naive_eval(op: str, left: Any, right: Any) -> Optional[bool]:
    """Three-valued SQL comparison in plain Python."""
    if left is None or right is None:
        return None
    if op == "LIKE":
        from repro.db.sql import like_to_regex
        return bool(like_to_regex(right).match(left))
    return {"=": left == right, "<>": left != right, "<": left < right,
            ">": left > right, "<=": left <= right,
            ">=": left >= right}[op]


def naive_where(row: dict, clause) -> bool:
    """Evaluate the OR-of-ANDs equivalent of the generated clause.

    The generated clause is a left-to-right chain p1 c1 p2 c2 p3; SQL
    parses it with AND binding tighter than OR, so re-group accordingly.
    """
    # split into OR-groups of AND-ed predicates
    groups: List[List[tuple]] = [[clause[0][0]]]
    for (pred, conj), nxt in zip(clause, clause[1:] + [(None, None)]):
        if nxt[0] is None:
            break
    # rebuild: conjunction tokens belong BETWEEN predicates
    groups = [[clause[0][0]]]
    for i in range(1, len(clause)):
        conj = clause[i - 1][1]
        pred = clause[i][0]
        if conj == "AND":
            groups[-1].append(pred)
        else:
            groups.append([pred])

    def group_value(group) -> Optional[bool]:
        value: Optional[bool] = True
        for col, op, lit in group:
            v = naive_eval(op, row[col], lit)
            if v is False:
                return False
            if v is None:
                value = None
        return value

    result: Optional[bool] = False
    for group in groups:
        v = group_value(group)
        if v is True:
            return True
        if v is None:
            result = None
    return result is True


def clause_to_sql(clause) -> str:
    parts = []
    for i, (pred, _conj) in enumerate(clause):
        col, op, lit = pred
        if i > 0:
            parts.append(clause[i - 1][1])
        parts.append(f"{col} {op} {sql_literal(lit)}")
    return " ".join(parts)


class TestDifferential:
    @settings(max_examples=120, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows_strategy, clause_strategy,
           st.sampled_from([None, "grp", "score", "name"]))
    def test_engine_matches_naive_model(self, rows, clause, index_on):
        db = build_db(rows, index_on)
        sql = f"SELECT id FROM t WHERE {clause_to_sql(clause)}"
        got = sorted(r[0] for r in db.execute(sql).rows)
        expected = sorted(i for i, row in enumerate(rows)
                          if naive_where(row, clause))
        assert got == expected, f"query: {sql}"

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows_strategy, clause_strategy)
    def test_indexes_never_change_answers(self, rows, clause):
        sql = f"SELECT id FROM t WHERE {clause_to_sql(clause)}"
        plain = sorted(build_db(rows, None).execute(sql).rows)
        for index_on in ("grp", "score", "name"):
            indexed = sorted(build_db(rows, index_on).execute(sql).rows)
            assert indexed == plain

    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(rows_strategy)
    def test_aggregates_match_python(self, rows):
        db = build_db(rows, None)
        rs = db.execute("SELECT COUNT(*), COUNT(score), SUM(grp), "
                        "MIN(score), MAX(score) FROM t")
        count_star, count_score, sum_grp, min_s, max_s = rs.rows[0]
        scores = [r["score"] for r in rows if r["score"] is not None]
        grps = [r["grp"] for r in rows if r["grp"] is not None]
        assert count_star == len(rows)
        assert count_score == len(scores)
        assert sum_grp == (sum(grps) if grps else None)
        assert min_s == (min(scores) if scores else None)
        assert max_s == (max(scores) if scores else None)
