"""Unit + property tests for the SQL parser and LIKE compiler."""

import pytest
from hypothesis import given, strategies as st

from repro.db import sql as S
from repro.errors import DatabaseError


class TestTokenizer:
    def test_keywords_uppercased(self):
        toks = S.tokenize("select x from t")
        assert toks[0].kind == "keyword" and toks[0].text == "SELECT"

    def test_string_with_escaped_quote(self):
        toks = S.tokenize("SELECT x FROM t WHERE n = 'O''Brien'")
        assert any(t.kind == "string" for t in toks)

    def test_bad_character(self):
        with pytest.raises(DatabaseError):
            S.tokenize("SELECT @ FROM t")


class TestParser:
    def test_star(self):
        q = S.parse("SELECT * FROM t")
        assert q.star and q.table.table == "t"

    def test_column_list_and_aliases(self):
        q = S.parse("SELECT a AS x, b y FROM t")
        assert [i.output_name for i in q.items] == ["x", "y"]

    def test_qualified_columns(self):
        q = S.parse("SELECT t.a FROM t")
        assert q.items[0].expr == S.ColumnRef("t", "a")

    def test_join(self):
        q = S.parse("SELECT a FROM t JOIN u ON t.id = u.tid")
        assert len(q.joins) == 1
        assert q.joins[0].left == S.ColumnRef("t", "id")

    def test_where_precedence_and_over_or(self):
        q = S.parse("SELECT a FROM t WHERE x = 1 OR y = 2 AND z = 3")
        assert isinstance(q.where, S.Or)
        assert isinstance(q.where.parts[1], S.And)

    def test_parentheses(self):
        q = S.parse("SELECT a FROM t WHERE (x = 1 OR y = 2) AND z = 3")
        assert isinstance(q.where, S.And)

    def test_not(self):
        q = S.parse("SELECT a FROM t WHERE NOT x = 1")
        assert isinstance(q.where, S.Not)

    def test_comparison_ops(self):
        for op in ("=", "<>", "!=", "<", ">", "<=", ">="):
            q = S.parse(f"SELECT a FROM t WHERE x {op} 1")
            want = "<>" if op == "!=" else op
            assert q.where.op == want

    def test_like_and_not_like(self):
        q = S.parse("SELECT a FROM t WHERE n LIKE 'x%' AND m NOT LIKE '_y'")
        assert q.where.parts[0].op == "LIKE"
        assert q.where.parts[1].op == "NOT LIKE"

    def test_in_list(self):
        q = S.parse("SELECT a FROM t WHERE x IN (1, 2, 3)")
        assert isinstance(q.where, S.InList)
        assert len(q.where.options) == 3

    def test_is_null_and_is_not_null(self):
        q = S.parse("SELECT a FROM t WHERE x IS NULL AND y IS NOT NULL")
        assert q.where.parts[0].negated is False
        assert q.where.parts[1].negated is True

    def test_params_numbered_in_order(self):
        q = S.parse("SELECT a FROM t WHERE x = ? AND y = ?")
        assert q.where.parts[0].right.index == 0
        assert q.where.parts[1].right.index == 1

    def test_aggregates(self):
        q = S.parse("SELECT COUNT(*), SUM(v), AVG(v) FROM t")
        assert q.items[0].expr.func == "COUNT" and q.items[0].expr.arg is None
        assert q.items[1].expr.func == "SUM"

    def test_count_distinct(self):
        q = S.parse("SELECT COUNT(DISTINCT v) FROM t")
        assert q.items[0].expr.distinct

    def test_group_by(self):
        q = S.parse("SELECT k, COUNT(*) FROM t GROUP BY k")
        assert q.group_by == (S.ColumnRef(None, "k"),)

    def test_order_by_desc_and_limit(self):
        q = S.parse("SELECT a FROM t ORDER BY a DESC, b LIMIT 5")
        assert q.order_by[0].descending
        assert not q.order_by[1].descending
        assert q.limit == 5

    def test_union(self):
        q = S.parse("SELECT a FROM t UNION SELECT a FROM u")
        assert isinstance(q, S.UnionQuery) and not q.all

    def test_union_all(self):
        q = S.parse("SELECT a FROM t UNION ALL SELECT a FROM u")
        assert q.all

    def test_literals(self):
        q = S.parse("SELECT a FROM t WHERE x = 1.5 AND y = 'txt' AND "
                    "z = NULL AND w = TRUE")
        values = [p.right.value for p in q.where.parts]
        assert values == [1.5, "txt", None, True]

    def test_trailing_garbage_rejected(self):
        with pytest.raises(DatabaseError):
            S.parse("SELECT a FROM t garbage extra ,")

    def test_empty_rejected(self):
        with pytest.raises(DatabaseError):
            S.parse("   ")

    def test_insert_rejected(self):
        with pytest.raises(DatabaseError):
            S.parse("INSERT INTO t VALUES (1)")


class TestIsSelectOnly:
    def test_select_ok(self):
        assert S.is_select_only("SELECT a FROM t")

    def test_delete_rejected(self):
        assert not S.is_select_only("DELETE FROM t")

    def test_union_ok(self):
        assert S.is_select_only("SELECT a FROM t UNION SELECT b FROM u")


class TestLike:
    def test_percent_matches_any_run(self):
        assert S.like_to_regex("ab%").match("abcdef")
        assert S.like_to_regex("%cd%").match("abcdef")
        assert not S.like_to_regex("ab%").match("xab")

    def test_underscore_matches_one(self):
        assert S.like_to_regex("a_c").match("abc")
        assert not S.like_to_regex("a_c").match("abbc")

    def test_regex_chars_escaped(self):
        assert S.like_to_regex("a.c").match("a.c")
        assert not S.like_to_regex("a.c").match("abc")

    @given(st.text(alphabet="ab.%_[](){}\\^$", max_size=10))
    def test_pattern_always_matches_itself_when_literal(self, text):
        literal = text.replace("%", "").replace("_", "")
        assert S.like_to_regex(literal).match(literal)

    @given(st.text(max_size=15))
    def test_lone_percent_matches_everything(self, text):
        assert S.like_to_regex("%").match(text)
