"""Unit + property tests for index structures."""

import pytest
from hypothesis import given, strategies as st

from repro.db.index import HashIndex, SortedIndex
from repro.errors import DatabaseError


class TestHashIndex:
    def test_add_get(self):
        idx = HashIndex()
        idx.add("x", 1)
        idx.add("x", 2)
        assert idx.get("x") == {1, 2}

    def test_remove(self):
        idx = HashIndex()
        idx.add("x", 1)
        idx.remove("x", 1)
        assert idx.get("x") == set()

    def test_remove_missing_is_noop(self):
        HashIndex().remove("x", 1)

    def test_unique_violation(self):
        idx = HashIndex(unique=True)
        idx.add("x", 1)
        with pytest.raises(DatabaseError):
            idx.add("x", 2)

    def test_null_values_indexable(self):
        idx = HashIndex()
        idx.add(None, 5)
        assert idx.get(None) == {5}

    def test_bytearray_coerced(self):
        idx = HashIndex()
        idx.add(bytearray(b"ab"), 1)
        assert idx.get(b"ab") == {1}

    def test_len(self):
        idx = HashIndex()
        idx.add("x", 1); idx.add("y", 2)
        assert len(idx) == 2


class TestSortedIndex:
    def test_range_inclusive(self):
        idx = SortedIndex()
        for rid, v in enumerate([10, 20, 30]):
            idx.add(v, rid)
        assert sorted(idx.range(10, 20)) == [0, 1]

    def test_range_exclusive(self):
        idx = SortedIndex()
        for rid, v in enumerate([10, 20, 30]):
            idx.add(v, rid)
        assert idx.range(10, 30, lo_incl=False, hi_incl=False) == [1]

    def test_open_bounds(self):
        idx = SortedIndex()
        for rid, v in enumerate([1, 2, 3]):
            idx.add(v, rid)
        assert sorted(idx.range(lo=2)) == [1, 2]
        assert sorted(idx.range(hi=2)) == [0, 1]
        assert sorted(idx.range()) == [0, 1, 2]

    def test_duplicates(self):
        idx = SortedIndex()
        idx.add(5, 1); idx.add(5, 2)
        assert sorted(idx.range(5, 5)) == [1, 2]

    def test_remove(self):
        idx = SortedIndex()
        idx.add(5, 1); idx.add(5, 2)
        idx.remove(5, 1)
        assert idx.range(5, 5) == [2]

    def test_nulls_ignored(self):
        idx = SortedIndex()
        idx.add(None, 1)
        assert len(idx) == 0
        assert idx.range() == []

    def test_mixed_types_do_not_crash(self):
        idx = SortedIndex()
        idx.add(1, 0)
        idx.add("a", 1)
        # type-segregated: numeric range only returns numerics
        assert idx.range(0, 5) == [0]

    @given(st.lists(st.integers(-100, 100), max_size=50))
    def test_range_matches_bruteforce(self, values):
        idx = SortedIndex()
        for rid, v in enumerate(values):
            idx.add(v, rid)
        lo, hi = -10, 10
        expected = sorted(r for r, v in enumerate(values) if lo <= v <= hi)
        assert sorted(idx.range(lo, hi)) == expected

    @given(st.lists(st.tuples(st.integers(0, 5), st.booleans()), max_size=40))
    def test_add_remove_consistency(self, ops):
        """Random add/remove sequences keep the index equal to a model."""
        idx = SortedIndex()
        model = set()
        for i, (value, is_add) in enumerate(ops):
            if is_add:
                idx.add(value, i)
                model.add((value, i))
            else:
                for (v, rid) in sorted(model):
                    if v == value:
                        idx.remove(v, rid)
                        model.discard((v, rid))
                        break
        assert sorted(idx.range()) == sorted(r for _, r in model)
