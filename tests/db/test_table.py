"""Unit tests for typed tables and indexing."""

import pytest

from repro.db.table import Column, Table
from repro.errors import DatabaseError


def make_users() -> Table:
    return Table("users", [Column("id", "INT", nullable=False),
                           Column("name", "TEXT"),
                           Column("age", "INT")], primary_key="id")


class TestSchema:
    def test_bad_type_rejected(self):
        with pytest.raises(DatabaseError):
            Column("x", "VARCHAR")

    def test_bad_column_name_rejected(self):
        with pytest.raises(DatabaseError):
            Column("bad name", "TEXT")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(DatabaseError):
            Table("t", [Column("a"), Column("a")])

    def test_empty_table_rejected(self):
        with pytest.raises(DatabaseError):
            Table("t", [])

    def test_missing_pk_column_rejected(self):
        with pytest.raises(DatabaseError):
            Table("t", [Column("a")], primary_key="b")


class TestTypeChecking:
    def test_type_enforced_on_insert(self):
        t = make_users()
        with pytest.raises(DatabaseError):
            t.insert({"id": 1, "age": "not an int"})

    def test_bool_not_accepted_as_int(self):
        t = make_users()
        with pytest.raises(DatabaseError):
            t.insert({"id": 1, "age": True})

    def test_float_column_coerces_int(self):
        t = Table("m", [Column("v", "FLOAT")])
        rid = t.insert({"v": 3})
        assert t.value(rid, "v") == 3.0
        assert isinstance(t.value(rid, "v"), float)

    def test_not_null_enforced(self):
        t = Table("m", [Column("v", "TEXT", nullable=False)])
        with pytest.raises(DatabaseError):
            t.insert({"v": None})

    def test_unknown_column_rejected(self):
        t = make_users()
        with pytest.raises(DatabaseError):
            t.insert({"id": 1, "nope": 2})


class TestPrimaryKey:
    def test_duplicate_pk_rejected(self):
        t = make_users()
        t.insert({"id": 1})
        with pytest.raises(DatabaseError):
            t.insert({"id": 1})

    def test_null_pk_rejected(self):
        t = make_users()
        with pytest.raises(DatabaseError):
            t.insert({"id": None})

    def test_pk_update_to_existing_rejected(self):
        t = make_users()
        r1 = t.insert({"id": 1})
        t.insert({"id": 2})
        with pytest.raises(DatabaseError):
            t.update_row(r1, {"id": 2})

    def test_pk_reusable_after_delete(self):
        t = make_users()
        rid = t.insert({"id": 1})
        t.delete_row(rid)
        t.insert({"id": 1})
        assert len(t) == 1


class TestCrud:
    def test_insert_and_read(self):
        t = make_users()
        rid = t.insert({"id": 1, "name": "ann", "age": 30})
        assert t.row_dict(rid) == {"id": 1, "name": "ann", "age": 30}

    def test_missing_values_become_null(self):
        t = make_users()
        rid = t.insert({"id": 1})
        assert t.value(rid, "name") is None

    def test_update(self):
        t = make_users()
        rid = t.insert({"id": 1, "age": 30})
        t.update_row(rid, {"age": 31})
        assert t.value(rid, "age") == 31

    def test_delete_removes_row(self):
        t = make_users()
        rid = t.insert({"id": 1})
        t.delete_row(rid)
        assert len(t) == 0
        with pytest.raises(DatabaseError):
            t.row_dict(rid)

    def test_scan_skips_tombstones(self):
        t = make_users()
        r1 = t.insert({"id": 1})
        t.insert({"id": 2})
        t.delete_row(r1)
        assert [t.value(r, "id") for r in t.scan()] == [2]


class TestIndexes:
    def test_lookup_eq_with_index(self):
        t = make_users()
        t.create_index("name")
        rid = t.insert({"id": 1, "name": "ann"})
        t.insert({"id": 2, "name": "bob"})
        assert t.lookup_eq("name", "ann") == [rid]

    def test_lookup_eq_without_index_scans(self):
        t = make_users()
        rid = t.insert({"id": 1, "name": "ann"})
        before = t.rows_scanned
        assert t.lookup_eq("name", "ann") == [rid]
        assert t.rows_scanned > before

    def test_index_created_after_inserts_backfills(self):
        t = make_users()
        rid = t.insert({"id": 1, "name": "ann"})
        t.create_index("name")
        assert t.lookup_eq("name", "ann") == [rid]

    def test_index_follows_updates(self):
        t = make_users()
        t.create_index("name")
        rid = t.insert({"id": 1, "name": "ann"})
        t.update_row(rid, {"name": "anna"})
        assert t.lookup_eq("name", "ann") == []
        assert t.lookup_eq("name", "anna") == [rid]

    def test_index_follows_deletes(self):
        t = make_users()
        t.create_index("name")
        rid = t.insert({"id": 1, "name": "ann"})
        t.delete_row(rid)
        assert t.lookup_eq("name", "ann") == []

    def test_sorted_index_range(self):
        t = make_users()
        t.create_index("age", sorted_index=True)
        for i, age in enumerate([25, 30, 35, 40], start=1):
            t.insert({"id": i, "age": age})
        rids = t.lookup_range("age", lo=30, hi=35)
        assert sorted(t.value(r, "age") for r in rids) == [30, 35]

    def test_range_exclusive_bounds(self):
        t = make_users()
        t.create_index("age", sorted_index=True)
        for i, age in enumerate([25, 30, 35], start=1):
            t.insert({"id": i, "age": age})
        rids = t.lookup_range("age", lo=25, hi=35, lo_incl=False,
                              hi_incl=False)
        assert [t.value(r, "age") for r in rids] == [30]

    def test_range_without_index(self):
        t = make_users()
        for i, age in enumerate([25, 30, 35], start=1):
            t.insert({"id": i, "age": age})
        rids = t.lookup_range("age", lo=28)
        assert sorted(t.value(r, "age") for r in rids) == [30, 35]

    def test_null_excluded_from_ranges(self):
        t = make_users()
        t.create_index("age", sorted_index=True)
        t.insert({"id": 1, "age": None})
        t.insert({"id": 2, "age": 10})
        assert len(t.lookup_range("age", lo=0)) == 1

    def test_drop_index(self):
        t = make_users()
        t.create_index("name")
        t.drop_index("name")
        assert "name" not in t.indexed_columns()

    def test_cannot_drop_pk_index(self):
        t = make_users()
        with pytest.raises(DatabaseError):
            t.drop_index("id")
