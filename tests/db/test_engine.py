"""Unit tests for SELECT execution."""

import pytest

from repro.db import Column, Database
from repro.errors import DatabaseError
from repro.util.clock import SimClock


@pytest.fixture
def db():
    db = Database()
    users = db.create_table("users", [
        Column("id", "INT", nullable=False), Column("name", "TEXT"),
        Column("age", "INT"), Column("city", "TEXT")], primary_key="id")
    rows = [(1, "ann", 30, "sd"), (2, "bob", 25, "la"),
            (3, "carol", 35, "sd"), (4, "dan", None, "sf")]
    for r in rows:
        users.insert(dict(zip(("id", "name", "age", "city"), r)))
    pets = db.create_table("pets", [
        Column("owner", "INT"), Column("pet", "TEXT")])
    for owner, pet in [(1, "cat"), (1, "dog"), (3, "ibis")]:
        pets.insert({"owner": owner, "pet": pet})
    return db


class TestProjection:
    def test_star(self, db):
        rs = db.execute("SELECT * FROM users WHERE id = 1")
        assert rs.columns == ["id", "name", "age", "city"]
        assert rs.rows == [(1, "ann", 30, "sd")]

    def test_column_list(self, db):
        rs = db.execute("SELECT name FROM users WHERE id = 2")
        assert rs.rows == [("bob",)]

    def test_alias_names_output(self, db):
        rs = db.execute("SELECT name AS who FROM users WHERE id = 1")
        assert rs.columns == ["who"]


class TestWhere:
    def test_equality(self, db):
        assert len(db.execute("SELECT id FROM users WHERE city = 'sd'")) == 2

    def test_range(self, db):
        rs = db.execute("SELECT name FROM users WHERE age >= 30")
        assert sorted(r[0] for r in rs.rows) == ["ann", "carol"]

    def test_null_never_compares(self, db):
        # dan has NULL age: excluded from both sides
        assert len(db.execute("SELECT id FROM users WHERE age > 0")) == 3
        assert len(db.execute("SELECT id FROM users WHERE age <= 0")) == 0

    def test_is_null(self, db):
        rs = db.execute("SELECT name FROM users WHERE age IS NULL")
        assert rs.rows == [("dan",)]

    def test_is_not_null(self, db):
        assert len(db.execute("SELECT id FROM users WHERE age IS NOT NULL")) == 3

    def test_like(self, db):
        rs = db.execute("SELECT name FROM users WHERE name LIKE 'c%'")
        assert rs.rows == [("carol",)]

    def test_not_like(self, db):
        assert len(db.execute(
            "SELECT id FROM users WHERE name NOT LIKE '%a%'")) == 1  # bob

    def test_in_list(self, db):
        assert len(db.execute(
            "SELECT id FROM users WHERE city IN ('sd', 'sf')")) == 3

    def test_and_or_not(self, db):
        rs = db.execute("SELECT name FROM users WHERE city = 'sd' "
                        "AND NOT age = 30")
        assert rs.rows == [("carol",)]

    def test_params(self, db):
        rs = db.execute("SELECT name FROM users WHERE age > ? AND city = ?",
                        [26, "sd"])
        assert sorted(r[0] for r in rs.rows) == ["ann", "carol"]

    def test_missing_param_fails(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT name FROM users WHERE age > ?")


class TestJoin:
    def test_inner_join(self, db):
        rs = db.execute("SELECT u.name, p.pet FROM users u "
                        "JOIN pets p ON p.owner = u.id ORDER BY pet")
        assert rs.rows == [("ann", "cat"), ("ann", "dog"), ("carol", "ibis")]

    def test_join_with_where(self, db):
        rs = db.execute("SELECT p.pet FROM users u JOIN pets p "
                        "ON p.owner = u.id WHERE u.city = 'sd' AND "
                        "u.age > 30")
        assert rs.rows == [("ibis",)]

    def test_join_star_prefixes_columns(self, db):
        rs = db.execute("SELECT * FROM users u JOIN pets p ON p.owner = u.id "
                        "LIMIT 1")
        assert "u.id" in rs.columns and "p.pet" in rs.columns

    def test_ambiguous_unqualified_column(self, db):
        db.create_table("extra", [Column("name", "TEXT")])
        db.table("extra").insert({"name": "ann"})
        with pytest.raises(DatabaseError):
            db.execute("SELECT name FROM users u JOIN extra x ON "
                       "x.name = u.name WHERE name = 'ann'")


class TestAggregates:
    def test_count_star(self, db):
        assert db.execute("SELECT COUNT(*) FROM users").scalar() == 4

    def test_count_skips_nulls(self, db):
        assert db.execute("SELECT COUNT(age) FROM users").scalar() == 3

    def test_sum_min_max_avg(self, db):
        rs = db.execute("SELECT SUM(age), MIN(age), MAX(age), AVG(age) "
                        "FROM users")
        assert rs.rows == [(90, 25, 35, 30.0)]

    def test_group_by(self, db):
        rs = db.execute("SELECT city, COUNT(*) AS n FROM users GROUP BY city")
        assert dict((c, n) for c, n in rs.rows) == {"sd": 2, "la": 1, "sf": 1}

    def test_group_by_requires_grouped_output(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT name, COUNT(*) FROM users GROUP BY city")

    def test_aggregate_over_empty_input(self, db):
        rs = db.execute("SELECT COUNT(*), MAX(age) FROM users WHERE id = 99")
        assert rs.rows == [(0, None)]

    def test_count_distinct(self, db):
        assert db.execute(
            "SELECT COUNT(DISTINCT city) FROM users").scalar() == 3


class TestOrderLimit:
    def test_order_asc(self, db):
        rs = db.execute("SELECT age FROM users WHERE age IS NOT NULL "
                        "ORDER BY age")
        assert [r[0] for r in rs.rows] == [25, 30, 35]

    def test_order_desc(self, db):
        rs = db.execute("SELECT age FROM users WHERE age IS NOT NULL "
                        "ORDER BY age DESC")
        assert [r[0] for r in rs.rows] == [35, 30, 25]

    def test_null_sorts_first(self, db):
        rs = db.execute("SELECT age FROM users ORDER BY age")
        assert rs.rows[0] == (None,)

    def test_limit(self, db):
        assert len(db.execute("SELECT id FROM users ORDER BY id LIMIT 2")) == 2

    def test_order_by_unknown_column(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT id FROM users ORDER BY nope")


class TestUnion:
    def test_union_dedupes(self, db):
        rs = db.execute("SELECT city FROM users WHERE id = 1 UNION "
                        "SELECT city FROM users WHERE id = 3")
        assert rs.rows == [("sd",)]

    def test_union_all_keeps_duplicates(self, db):
        rs = db.execute("SELECT city FROM users WHERE id = 1 UNION ALL "
                        "SELECT city FROM users WHERE id = 3")
        assert len(rs.rows) == 2

    def test_union_arity_mismatch(self, db):
        with pytest.raises(DatabaseError):
            db.execute("SELECT id, name FROM users UNION SELECT id FROM users")


class TestPlannerAndCost:
    def test_pk_lookup_touches_one_row(self, db):
        t = db.table("users")
        before = t.rows_scanned
        db.execute("SELECT name FROM users WHERE id = 3")
        assert t.rows_scanned - before == 1

    def test_unindexed_predicate_scans_all(self, db):
        t = db.table("users")
        before = t.rows_scanned
        db.execute("SELECT id FROM users WHERE city = 'sd'")
        assert t.rows_scanned - before == len(t)

    def test_sorted_index_used_for_range(self, db):
        t = db.table("users")
        t.create_index("age", sorted_index=True)
        before = t.rows_scanned
        db.execute("SELECT name FROM users WHERE age > 31")
        assert t.rows_scanned - before == 1   # only carol

    def test_clock_charged_when_wired(self):
        clock = SimClock()
        db = Database(clock=clock)
        t = db.create_table("t", [Column("v", "INT")])
        for i in range(100):
            t.insert({"v": i})
        t0 = clock.now
        db.execute("SELECT COUNT(*) FROM t")
        assert clock.now > t0

    def test_resultset_helpers(self, db):
        rs = db.execute("SELECT id, name FROM users ORDER BY id LIMIT 1")
        assert rs.dicts() == [{"id": 1, "name": "ann"}]
        with pytest.raises(DatabaseError):
            rs.scalar()   # 1x2, not 1x1
