"""Unit tests for the open-loop workload generator."""

import pytest

from repro.net.rpc import ServiceRegistry
from repro.net.simnet import Network
from repro.workload import (
    LoadReport,
    RequestOutcome,
    percentile,
    poisson_arrivals,
    run_open_loop,
)


class TestPoissonArrivals:
    def test_deterministic_for_seed(self):
        assert poisson_arrivals(10.0, 20, seed=7) == \
            poisson_arrivals(10.0, 20, seed=7)
        assert poisson_arrivals(10.0, 20, seed=7) != \
            poisson_arrivals(10.0, 20, seed=8)

    def test_sorted_and_after_start(self):
        ts = poisson_arrivals(5.0, 50, start=100.0)
        assert ts == sorted(ts)
        assert all(t > 100.0 for t in ts)

    def test_mean_gap_matches_rate(self):
        ts = poisson_arrivals(10.0, 5000, seed=3)
        mean_gap = ts[-1] / len(ts)
        assert mean_gap == pytest.approx(0.1, rel=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            poisson_arrivals(0.0, 5)
        with pytest.raises(ValueError):
            poisson_arrivals(1.0, -1)
        assert poisson_arrivals(1.0, 0) == []


class TestPercentile:
    def test_nearest_rank(self):
        values = list(range(1, 101))
        assert percentile(values, 50) == 50
        assert percentile(values, 99) == 99
        assert percentile(values, 100) == 100
        assert percentile(values, 0) == 1

    def test_single_value(self):
        assert percentile([7.0], 99) == 7.0

    def test_validation(self):
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile([1.0], 101)


class TestLoadReport:
    def _report(self):
        rep = LoadReport(offered_rate_hz=10.0)
        rep.outcomes = [
            RequestOutcome(index=0, arrival=0.0, wait=0.0, latency=1.0),
            RequestOutcome(index=1, arrival=1.0, wait=0.5, latency=2.0),
            RequestOutcome(index=2, arrival=2.0, shed=True,
                           retry_after=0.3, error="ServerBusy"),
            RequestOutcome(index=3, arrival=3.0, error="NoSuchObject"),
        ]
        return rep

    def test_counts(self):
        rep = self._report()
        assert rep.issued == 4
        assert len(rep.completed) == 2
        assert rep.shed_count == 1
        assert rep.error_count == 1
        assert rep.shed_fraction == 0.25

    def test_latencies_exclude_failures(self):
        rep = self._report()
        assert rep.latencies() == [1.0, 2.0]
        assert rep.p50 == 1.0
        assert rep.p99 == 2.0

    def test_goodput_over_makespan(self):
        rep = self._report()
        # first arrival 0.0, last completion 1.0 + 2.0 = 3.0
        assert rep.makespan_s == pytest.approx(3.0)
        assert rep.goodput_hz == pytest.approx(2 / 3.0)

    def test_summary_keys(self):
        s = self._report().summary()
        assert s["issued"] == 4 and s["completed"] == 2
        assert s["shed"] == 1 and s["errors"] == 1
        assert s["p99_s"] == 2.0
        assert s["mean_wait_s"] == pytest.approx(0.25)

    def test_empty_report(self):
        rep = LoadReport(offered_rate_hz=1.0)
        assert rep.goodput_hz == 0.0
        assert rep.summary()["p99_s"] is None


class SlowEcho:
    SERVICE_S = 0.1

    def __init__(self, net):
        self.net = net

    def work(self, text: str) -> str:
        self.net.clock.advance(self.SERVICE_S)
        return text


class TestRunOpenLoop:
    @pytest.fixture
    def grid(self):
        net = Network()
        net.add_host("client")
        net.add_host("server")
        rpc = ServiceRegistry(net)
        rpc.register("server", "svc", SlowEcho(net))
        return net, rpc

    def test_underloaded_run_sees_no_queueing(self, grid):
        net, rpc = grid
        net.install_station("server", workers=1)
        # offered rate 1/s against capacity ~10/s
        arrivals = poisson_arrivals(1.0, 30, seed=1)
        rep = run_open_loop(rpc, arrivals,
                            lambda i: rpc.call("client", "server", "svc",
                                               "work", text=f"m{i}"),
                            offered_rate_hz=1.0)
        assert rep.issued == 30
        assert len(rep.completed) == 30
        # a Poisson gap occasionally undercuts the service time, so a
        # few requests brush the previous one -- but queueing stays
        # negligible and the typical request sees none at all
        base = SlowEcho.SERVICE_S + 2 * net.default_link.latency_s
        zero_wait = sum(1 for o in rep.outcomes if o.wait == 0.0)
        assert zero_wait >= 0.8 * rep.issued
        assert rep.mean_wait_s < SlowEcho.SERVICE_S / 2
        assert rep.p50 == pytest.approx(base, rel=1e-3)

    def test_overloaded_run_accumulates_wait(self, grid):
        net, rpc = grid
        net.install_station("server", workers=1)
        # 30/s against ~10/s capacity: waits must grow with the backlog
        arrivals = poisson_arrivals(30.0, 60, seed=1)
        rep = run_open_loop(rpc, arrivals,
                            lambda i: rpc.call("client", "server", "svc",
                                               "work", text="x"),
                            offered_rate_hz=30.0)
        assert len(rep.completed) == 60
        assert rep.p99 > 3 * rep.p50 or rep.p50 > 5 * SlowEcho.SERVICE_S
        waits = [o.wait for o in rep.outcomes]
        assert waits[-1] > waits[len(waits) // 2] > 0.0
        # goodput saturates at the service rate, not the offered rate
        assert rep.goodput_hz == pytest.approx(1 / SlowEcho.SERVICE_S,
                                               rel=0.1)

    def test_bounded_queue_sheds_and_records(self, grid):
        net, rpc = grid
        net.install_station("server", workers=1, queue_depth=2)
        arrivals = poisson_arrivals(30.0, 60, seed=1)
        rep = run_open_loop(rpc, arrivals,
                            lambda i: rpc.call("client", "server", "svc",
                                               "work", text="x"),
                            offered_rate_hz=30.0)
        assert rep.shed_count > 0
        assert len(rep.completed) + rep.shed_count == 60
        shed = [o for o in rep.outcomes if o.shed]
        assert all(o.retry_after is not None for o in shed)
        # accepted requests wait at most ~queue_depth service times
        max_wait = max(o.wait for o in rep.outcomes if o.ok)
        assert max_wait <= 3.5 * SlowEcho.SERVICE_S

    def test_non_monotone_arrivals_rejected(self, grid):
        _, rpc = grid
        with pytest.raises(ValueError):
            run_open_loop(rpc, [1.0, 0.5], lambda i: None)

    def test_error_recorded_not_raised(self, grid):
        net, rpc = grid
        arrivals = poisson_arrivals(1.0, 3, seed=1)
        rep = run_open_loop(rpc, arrivals,
                            lambda i: rpc.call("client", "server", "svc",
                                               "missing_method"))
        # RpcError derives from SrbError: recorded per request
        assert rep.issued == 3
        assert rep.error_count == 3
        assert len(rep.completed) == 0
