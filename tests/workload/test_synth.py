"""Tests for synthetic workload generators and canned grids."""

import pytest

from repro.mcat import Condition
from repro.workload import (
    embryo_files,
    hyperspectral_files,
    populate,
    small_files,
    standard_grid,
    survey_files,
)


class TestGenerators:
    def test_survey_deterministic(self):
        a = [f.content for f in survey_files(5, seed=1)]
        b = [f.content for f in survey_files(5, seed=1)]
        assert a == b

    def test_survey_seed_changes_content(self):
        a = [f.content for f in survey_files(3, seed=1)]
        b = [f.content for f in survey_files(3, seed=2)]
        assert a != b

    def test_survey_headers_extractable(self):
        from repro.mcat.extraction import ExtractionRegistry
        reg = ExtractionRegistry()
        f = next(iter(survey_files(1)))
        triples = {t.attr: t.value for t in
                   reg.extract("fits image", "fits header", f.content)}
        assert triples["RA"] == f.attributes["RA"]
        assert triples["JMAG"] == f.attributes["JMAG"]

    def test_survey_attributes_in_range(self):
        for f in survey_files(50):
            assert 0.0 <= float(f.attributes["RA"]) <= 360.0
            assert -90.0 <= float(f.attributes["DEC"]) <= 90.0

    def test_embryo_has_sidecar(self):
        f = next(iter(embryo_files(1)))
        assert f.sidecar is not None
        assert b"Stage:" in f.sidecar
        assert f.data_type == "dicom image"

    def test_embryo_sidecar_extractable(self):
        from repro.mcat.extraction import ExtractionRegistry
        reg = ExtractionRegistry()
        f = next(iter(embryo_files(1)))
        triples = {t.attr: t.value for t in
                   reg.extract("dicom image", "dicom header", f.sidecar)}
        assert triples["Stage"] == f.attributes["Stage"]

    def test_hyperspectral_properties_extractable(self):
        from repro.mcat.extraction import ExtractionRegistry
        reg = ExtractionRegistry()
        f = next(iter(hyperspectral_files(1)))
        triples = {t.attr: t.value for t in
                   reg.extract("ascii text", "properties",
                               f.content[:200])}
        assert triples["site"] == f.attributes["site"]

    def test_small_files_uniform(self):
        files = list(small_files(10, size=128))
        assert len(files) == 10
        assert all(len(f.content) == 128 for f in files)

    def test_names_unique(self):
        names = [f.name for f in survey_files(100)]
        assert len(set(names)) == 100


class TestStandardGrid:
    def test_topology_matches_paper_example(self):
        g = standard_grid()
        assert g.fed.resources.is_logical("logrsrc1")
        members = [r.name for r in g.fed.resources.resolve("logrsrc1")]
        assert members == ["unix-sdsc", "hpss-caltech"]

    def test_curator_ready_to_work(self):
        g = standard_grid()
        g.curator.ingest(f"{g.home}/x.txt", b"x")
        assert g.curator.get(f"{g.home}/x.txt") == b"x"

    def test_populate_attaches_metadata(self):
        g = standard_grid()
        n = populate(g.curator, g.home, survey_files(3),
                     resource="unix-sdsc")
        assert n == 3
        r = g.curator.query(g.home, [Condition("SURVEY", "=", "2MASS")])
        assert len(r.rows) == 3

    def test_populate_ingests_sidecars(self):
        g = standard_grid()
        populate(g.curator, g.home, embryo_files(2), resource="unix-sdsc")
        listing = g.curator.ls(g.home)
        names = [o["name"] for o in listing["objects"]]
        assert sum(1 for n in names if n.endswith(".hdr")) == 2

    def test_selection_policy_plumbed(self):
        g = standard_grid(selection_policy="round-robin")
        assert g.fed.selector.policy == "round-robin"
