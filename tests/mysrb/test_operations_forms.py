"""Tests for the MySRB operation forms (move/copy/link/lock/checkout)
and the remaining registration forms."""

import pytest

from repro.mysrb import Browser, MySrbApp
from repro.workload import standard_grid


@pytest.fixture
def web():
    grid = standard_grid()
    grid.admin.grant("/demozone", "sekar@sdsc", "read")
    app = MySrbApp(grid.fed)
    browser = Browser(app)
    browser.login("sekar@sdsc", "secret")
    return grid, browser


class TestOperationForms:
    def test_get_shows_form_before_posting(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/f.txt", b"x")
        for action in ("replicate", "copy", "move", "link"):
            page = browser.get(f"/op?action={action}&path={grid.home}/f.txt")
            assert page.code == 200
            assert f'value="{action}"' in page.text

    def test_copy_form(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/c.txt", b"copy me")
        browser.post("/op", {"action": "copy", "path": f"{grid.home}/c.txt",
                             "dst": f"{grid.home}/c2.txt"})
        assert grid.curator.get(f"{grid.home}/c2.txt") == b"copy me"

    def test_move_form(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/m.txt", b"x")
        browser.post("/op", {"action": "move", "path": f"{grid.home}/m.txt",
                             "dst": f"{grid.home}/moved.txt"})
        assert grid.curator.get(f"{grid.home}/moved.txt") == b"x"

    def test_link_form(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/l.txt", b"x")
        browser.post("/op", {"action": "link", "path": f"{grid.home}/l.txt",
                             "dst": f"{grid.home}/alias.txt"})
        assert grid.curator.get(f"{grid.home}/alias.txt") == b"x"

    def test_lock_unlock_forms(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/k.txt", b"x")
        browser.post("/op", {"action": "lock", "path": f"{grid.home}/k.txt"})
        oid = grid.fed.mcat.get_object(f"{grid.home}/k.txt")["oid"]
        assert len(grid.fed.locks.locks_on(oid)) == 1
        browser.post("/op", {"action": "unlock",
                             "path": f"{grid.home}/k.txt"})
        assert grid.fed.locks.locks_on(oid) == []

    def test_checkout_checkin_forms(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/v.txt", b"x")
        browser.post("/op", {"action": "checkout",
                             "path": f"{grid.home}/v.txt"})
        obj = grid.fed.mcat.get_object(f"{grid.home}/v.txt")
        assert obj["checked_out_by"] == "sekar@sdsc"
        browser.post("/op", {"action": "checkin",
                             "path": f"{grid.home}/v.txt"})
        obj = grid.fed.mcat.get_object(f"{grid.home}/v.txt")
        assert obj["checked_out_by"] is None
        assert obj["version"] == 2

    def test_delete_collection_via_form(self, web):
        grid, browser = web
        grid.curator.mkcoll(f"{grid.home}/empty")
        browser.post("/op", {"action": "delete",
                             "path": f"{grid.home}/empty"})
        assert not grid.fed.mcat.collection_exists(f"{grid.home}/empty")

    def test_unknown_action_400(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/x.txt", b"x")
        r = browser.post("/op", {"action": "teleport",
                                 "path": f"{grid.home}/x.txt"})
        assert r.code == 400


class TestRegistrationForms:
    def test_register_file_form(self, web):
        grid, browser = web
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/ext/pre.dat", b"registered bytes")
        browser.post("/register/file", {
            "coll": grid.home, "name": "pre.dat",
            "resource": "unix-caltech", "physical_path": "/ext/pre.dat"})
        assert grid.curator.get(f"{grid.home}/pre.dat") == b"registered bytes"

    def test_register_directory_form(self, web):
        grid, browser = web
        drv = grid.fed.resources.physical("unix-caltech").driver
        drv.create("/ext/cone/x.txt", b"in the cone")
        browser.post("/register/directory", {
            "coll": grid.home, "name": "cone",
            "resource": "unix-caltech", "physical_dir": "/ext/cone"})
        assert grid.curator.get(f"{grid.home}/cone/x.txt") == b"in the cone"

    def test_register_method_form(self, web):
        grid, browser = web
        browser.post("/register/method", {
            "coll": grid.home, "name": "ps", "server": "srb1",
            "command": "srbps", "proxy_function": "1"})
        out = grid.curator.get(f"{grid.home}/ps")
        assert b"srb1" in out

    def test_register_partial_sql_form(self, web):
        grid, browser = web
        from repro.db import Column
        drv = grid.fed.resources.physical("dlib1").driver
        t = drv.create_user_table("vals", [Column("v", "INT")])
        for i in range(5):
            t.insert({"v": i})
        browser.post("/register/sql", {
            "coll": grid.home, "name": "partial", "resource": "dlib1",
            "sql": "SELECT v FROM vals WHERE", "template": "XMLREL",
            "partial": "1"})
        out = grid.curator.get(f"{grid.home}/partial", sql_remainder="v > 2")
        assert out.count(b"<row>") == 2

    def test_unknown_registration_kind_404(self, web):
        grid, browser = web
        r = browser.post("/register/hologram", {"coll": grid.home,
                                                "name": "x"})
        assert r.code == 404


class TestStructuralForm:
    def test_define_and_display(self, web):
        grid, browser = web
        browser.post("/structural", {
            "coll": grid.home, "attr": "culture",
            "default_value": "", "vocabulary": "avian|marine",
            "mandatory": "1", "comment": "MetaCore for Cultures"})
        page = browser.get(f"/browse?path={grid.home}")
        # the requirement now governs ingest through the form
        from repro.errors import MandatoryMetadataMissing
        with pytest.raises(MandatoryMetadataMissing):
            grid.curator.ingest(f"{grid.home}/x.txt", b"x")
        form = browser.get(f"/structural?coll={grid.home}")
        assert "culture" in form.text
        assert "avian|marine" in form.text
        assert "MetaCore for Cultures" in form.text

    def test_structural_form_requires_ownership(self, web):
        grid, browser = web
        grid.fed.add_user("guest@sdsc", "pw")
        from repro.mysrb import Browser
        gb = Browser(browser.app)
        gb.login("guest@sdsc", "pw")
        r = gb.post("/structural", {"coll": grid.home, "attr": "evil"})
        assert r.code == 403
