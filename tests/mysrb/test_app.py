"""Tests for the MySRB web interface (sessions, pages, forms)."""

import pytest

from repro.db import Column
from repro.mysrb import Browser, MySrbApp
from repro.workload import standard_grid


@pytest.fixture
def web():
    grid = standard_grid()
    grid.admin.grant("/demozone", "sekar@sdsc", "read")
    app = MySrbApp(grid.fed)
    browser = Browser(app)
    return grid, app, browser


def login(browser):
    return browser.login("sekar@sdsc", "secret")


class TestSecurity:
    def test_http_refused(self, web):
        grid, app, _ = web
        insecure = Browser(app, https=False)
        r = insecure.get("/browse", follow_redirects=False)
        assert r.code == 403
        assert "https" in r.text

    def test_login_sets_secure_cookie(self, web):
        grid, app, browser = web
        browser.request("POST", "/login",
                        form={"username": "sekar@sdsc", "password": "secret"},
                        follow_redirects=False)
        assert browser.cookie is not None
        assert browser.cookie.startswith("sk-")

    def test_bad_password_rejected(self, web):
        grid, app, browser = web
        r = browser.login("sekar@sdsc", "WRONG")
        assert r.code == 401
        assert browser.cookie is None

    def test_session_expires_after_60_minutes(self, web):
        grid, app, browser = web
        login(browser)
        grid.fed.clock.advance(3601.0)
        r = browser.get("/browse?path=/demozone")
        assert r.code == 401

    def test_forged_session_key_rejected(self, web):
        grid, app, browser = web
        browser.cookie = "sk-000042-deadbeefdeadbeef"
        r = browser.get("/browse?path=/demozone")
        assert r.code == 401

    def test_logout_invalidates(self, web):
        grid, app, browser = web
        login(browser)
        key = browser.cookie
        browser.get("/logout", follow_redirects=False)
        browser.cookie = key
        home = browser.get("/browse?path=/demozone/home/sekar")
        assert home.code == 401

    def test_public_browsing_without_login(self, web):
        grid, app, browser = web
        grid.admin.grant("/demozone", "*", "read")
        r = browser.get("/browse?path=/demozone")
        assert r.code == 200


class TestBrowse:
    def test_split_window_panes_present(self, web):
        grid, app, browser = web
        login(browser)
        r = browser.get("/browse?path=/demozone/home/sekar")
        assert 'class="top-pane"' in r.text
        assert 'class="bottom-pane"' in r.text

    def test_listing_shows_objects_and_operations(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/notes.txt", b"hello",
                            data_type="ascii text")
        login(browser)
        r = browser.get(f"/browse?path={grid.home}")
        assert "notes.txt" in r.text
        for op in ("open", "replicate", "copy", "move", "link", "delete"):
            assert f">{op}</a>" in r.text

    def test_unknown_collection_404(self, web):
        grid, app, browser = web
        login(browser)
        assert browser.get("/browse?path=/demozone/ghost").code == 404

    def test_forbidden_collection_403(self, web):
        grid, app, browser = web
        grid.admin.mkcoll("/otherzone")
        login(browser)
        assert browser.get("/browse?path=/otherzone").code == 403

    def test_open_shows_metadata_and_content(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/open.txt", b"the content",
                            data_type="ascii text")
        grid.curator.add_metadata(f"{grid.home}/open.txt", "topic", "grids")
        login(browser)
        r = browser.get(f"/open?path={grid.home}/open.txt")
        assert "the content" in r.text
        assert "topic" in r.text and "grids" in r.text
        assert "replica" in r.text


class TestStatusPage:
    def test_status_shows_grid_stats_and_metrics(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/s.txt", b"x" * 1000)
        login(browser)
        r = browser.get("/status")
        assert r.code == 200
        assert "messages" in r.text          # federation summary
        assert "rpc.calls" in r.text         # counter series
        assert "rpc.call_s" in r.text        # histogram series

    def test_status_public_like_resources(self, web):
        grid, app, browser = web
        r = browser.get("/status")      # anonymous, same as /resources
        assert r.code == 200
        assert "virtual_time_s" in r.text

    def test_status_breaks_ops_down_by_plane(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/p.txt", b"x")
        grid.curator.get_metadata(f"{grid.home}/p.txt")
        login(browser)
        r = browser.get("/status")
        assert "Server ops by plane" in r.text
        assert "data" in r.text and "metadata" in r.text


class TestIngestFlow:
    def test_ingest_form_has_dublin_core(self, web):
        grid, app, browser = web
        login(browser)
        r = browser.get(f"/ingest?coll={grid.home}")
        for el in ("Title", "Creator", "Subject", "Rights"):
            assert f'name="dc:{el}"' in r.text

    def test_ingest_form_shows_structural_requirements(self, web):
        grid, app, browser = web
        grid.curator.define_structural(
            grid.home, "culture", vocabulary=["avian", "marine"],
            mandatory=True, comment="required by the curator")
        login(browser)
        r = browser.get(f"/ingest?coll={grid.home}")
        assert "culture *" in r.text
        assert "<option" in r.text and "avian" in r.text
        assert "required by the curator" in r.text

    def test_post_creates_object_with_metadata(self, web):
        grid, app, browser = web
        login(browser)
        browser.post("/ingest", {
            "coll": grid.home, "name": "birds.txt",
            "content": "ibis data", "data_type": "ascii text",
            "resource": "unix-sdsc", "container": "(none)",
            "dc:Title": "Bird notes",
            "uname1": "species", "uvalue1": "ibis", "uunits1": "",
        })
        assert grid.curator.get(f"{grid.home}/birds.txt") == b"ibis data"
        md = {m["attr"]: m for m in
              grid.curator.get_metadata(f"{grid.home}/birds.txt")}
        assert md["Title"]["meta_class"] == "type"
        assert md["species"]["value"] == "ibis"

    def test_mandatory_metadata_violation_400(self, web):
        grid, app, browser = web
        grid.curator.define_structural(grid.home, "curator", mandatory=True)
        login(browser)
        r = browser.post("/ingest", {
            "coll": grid.home, "name": "x.txt", "content": "x",
            "resource": "unix-sdsc", "container": "(none)"})
        assert r.code == 400
        assert "curator" in r.text

    def test_bulk_ingest_form_linked_and_served(self, web):
        grid, app, browser = web
        login(browser)
        r = browser.get(f"/ingest?coll={grid.home}")
        assert "/ingest-bulk" in r.text
        r = browser.get(f"/ingest-bulk?coll={grid.home}")
        assert r.code == 200
        assert 'name="name1"' in r.text and 'name="content1"' in r.text

    def test_bulk_ingest_post_creates_all_objects(self, web):
        grid, app, browser = web
        login(browser)
        r = browser.post("/ingest-bulk", {
            "coll": grid.home, "resource": "unix-sdsc",
            "container": "(none)",
            "name1": "a.txt", "content1": "alpha",
            "name2": "b.txt", "content2": "beta",
            "name3": "", "content3": "skipped",
        })
        assert r.code == 200
        assert "2/2" in r.text
        assert grid.curator.get(f"{grid.home}/a.txt") == b"alpha"
        assert grid.curator.get(f"{grid.home}/b.txt") == b"beta"

    def test_bulk_ingest_post_reports_per_file_errors(self, web):
        grid, app, browser = web
        login(browser)
        grid.curator.ingest(f"{grid.home}/dup.txt", b"old")
        r = browser.post("/ingest-bulk", {
            "coll": grid.home, "resource": "unix-sdsc",
            "container": "(none)",
            "name1": "dup.txt", "content1": "new",
            "name2": "fresh.txt", "content2": "ok",
        })
        assert r.code == 200
        assert "1/2" in r.text and "AlreadyExists" in r.text
        assert grid.curator.get(f"{grid.home}/dup.txt") == b"old"

    def test_edit_small_ascii_file(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/edit.txt", b"before",
                            data_type="ascii text")
        login(browser)
        form = browser.get(f"/edit?path={grid.home}/edit.txt")
        assert "before" in form.text
        browser.post("/edit", {"path": f"{grid.home}/edit.txt",
                               "content": "after"})
        assert grid.curator.get(f"{grid.home}/edit.txt") == b"after"

    def test_edit_refused_for_binary_types(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/img.fits", b"\x00\x01",
                            data_type="fits image")
        login(browser)
        assert browser.get(f"/edit?path={grid.home}/img.fits").code == 400


class TestQueryFlow:
    def test_query_form_lists_attributes_and_operators(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/q.txt", b"x")
        grid.curator.add_metadata(f"{grid.home}/q.txt", "species", "ibis")
        login(browser)
        r = browser.get(f"/query?scope={grid.home}")
        assert "species" in r.text
        assert "not like" in r.text
        assert "conjunctive" in r.text

    def test_query_post_returns_results(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/q1.txt", b"x")
        grid.curator.add_metadata(f"{grid.home}/q1.txt", "species", "ibis")
        grid.curator.ingest(f"{grid.home}/q2.txt", b"x")
        grid.curator.add_metadata(f"{grid.home}/q2.txt", "species", "heron")
        login(browser)
        r = browser.post("/query", {
            "scope": grid.home, "attr1": "species", "op1": "=",
            "value1": "ibis", "show1": "1"})
        assert "q1.txt" in r.text
        assert "q2.txt" not in r.text
        assert "1 matching SRB objects" in r.text


class TestOperationsAndRegistration:
    def test_mkcoll(self, web):
        grid, app, browser = web
        login(browser)
        browser.post("/mkcoll", {"coll": grid.home, "name": "Avian Culture"})
        assert grid.fed.mcat.collection_exists(f"{grid.home}/Avian Culture")

    def test_replicate_via_form(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/rep.txt", b"x")
        login(browser)
        browser.post("/op", {"action": "replicate",
                             "path": f"{grid.home}/rep.txt",
                             "resource": "unix-caltech"})
        assert len(grid.curator.stat(f"{grid.home}/rep.txt")["replicas"]) == 2

    def test_delete_via_form(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/del.txt", b"x")
        login(browser)
        browser.post("/op", {"action": "delete",
                             "path": f"{grid.home}/del.txt"})
        from repro.errors import NoSuchObject
        with pytest.raises(NoSuchObject):
            grid.curator.stat(f"{grid.home}/del.txt")

    def test_register_url_and_open_inline(self, web):
        grid, app, browser = web
        grid.fed.web.publish("http://museum.org/x", b"<html>inline</html>")
        login(browser)
        browser.post("/register/url", {"coll": grid.home, "name": "ext",
                                       "url": "http://museum.org/x"})
        r = browser.get(f"/open?path={grid.home}/ext")
        assert "<html>inline</html>" in r.text      # inlineable content

    def test_register_sql_and_render(self, web):
        grid, app, browser = web
        drv = grid.fed.resources.physical("dlib1").driver
        t = drv.create_user_table("m", [Column("v", "TEXT")])
        t.insert({"v": "hello-db"})
        login(browser)
        browser.post("/register/sql", {
            "coll": grid.home, "name": "q", "resource": "dlib1",
            "sql": "SELECT v FROM m", "template": "HTMLREL"})
        r = browser.get(f"/open?path={grid.home}/q")
        assert "hello-db" in r.text

    def test_annotate_flow(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/ann.txt", b"x")
        login(browser)
        browser.post("/annotate", {"path": f"{grid.home}/ann.txt",
                                   "ann_type": "comment",
                                   "text": "lovely dataset",
                                   "location": ""})
        anns = grid.curator.annotations(f"{grid.home}/ann.txt")
        assert anns[0]["text"] == "lovely dataset"

    def test_metadata_insert_form(self, web):
        grid, app, browser = web
        grid.curator.ingest(f"{grid.home}/md.txt", b"x")
        login(browser)
        browser.post("/metadata", {"path": f"{grid.home}/md.txt",
                                   "attr": "topic", "value": "grids",
                                   "units": ""})
        md = grid.curator.get_metadata(f"{grid.home}/md.txt")
        assert md[0]["attr"] == "topic"

    def test_help_page(self, web):
        grid, app, browser = web
        assert "on-line help" in browser.get("/help").text

    def test_root_redirects_to_zone(self, web):
        grid, app, browser = web
        grid.admin.grant("/demozone", "*", "read")
        r = browser.get("/")
        assert r.code == 200
        assert "Collection /demozone" in r.text


class TestUserRegistration:
    def test_admin_registers_user(self, web):
        grid, app, browser = web
        admin_browser = Browser(app)
        admin_browser.login("srbadmin@sdsc", "hunter2")
        form = admin_browser.get("/newuser")
        assert form.code == 200 and "Role" in form.text
        admin_browser.post("/newuser", {"username": "newbie@ucsd",
                                        "password": "pw",
                                        "role": "contributor"})
        assert grid.fed.users.exists("newbie@ucsd")
        assert grid.fed.users.role_of("newbie@ucsd") == "contributor"
        # the new user can sign on to MySRB immediately (the post-login
        # landing page may still be 403 until someone grants read access)
        nb = Browser(app)
        r = nb.request("POST", "/login",
                       form={"username": "newbie@ucsd", "password": "pw"},
                       follow_redirects=False)
        assert r.code == 303 and nb.cookie is not None

    def test_non_admin_cannot_register_users(self, web):
        grid, app, browser = web
        login(browser)                      # curator, not sysadmin
        assert browser.get("/newuser").code == 403
        assert not grid.fed.users.exists("evil@x")

    def test_anonymous_cannot_register_users(self, web):
        grid, app, browser = web
        assert browser.get("/newuser").code == 403


class TestContainerView:
    def test_open_container_lists_members(self, web):
        grid, app, browser = web
        grid.fed.add_logical_resource("viewres", ["unix-sdsc"])
        grid.curator.create_container(f"{grid.home}/box", "viewres")
        grid.curator.ingest(f"{grid.home}/m1.txt", b"12345",
                            container=f"{grid.home}/box")
        grid.curator.ingest(f"{grid.home}/m2.txt", b"678",
                            container=f"{grid.home}/box")
        login(browser)
        page = browser.get(f"/open?path={grid.home}/box")
        assert page.code == 200
        assert "Container members (2)" in page.text
        assert "m1.txt" in page.text and "m2.txt" in page.text
        assert "8 bytes total" in page.text
