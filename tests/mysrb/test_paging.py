"""MySRB listing/result pagination: rendering is clamped at a page
bound and large sets continue through cursor links, never one unbounded
document."""

import re

import pytest

from repro.mysrb import Browser, MySrbApp, views
from repro.mysrb.views import PAGE_BOUND
from repro.workload import standard_grid

N_OBJECTS = PAGE_BOUND + 10


@pytest.fixture
def web():
    grid = standard_grid()
    grid.admin.grant("/demozone", "sekar@sdsc", "read")
    grid.curator.bulk_ingest([
        {"path": f"{grid.home}/d{i:04d}.dat", "data": b"x"}
        for i in range(N_OBJECTS)])
    app = MySrbApp(grid.fed)
    browser = Browser(app)
    browser.login("sekar@sdsc", "secret")
    return grid, app, browser


def next_link(html):
    m = re.search(r'class="next-page" href="([^"]+)"', html)
    return m.group(1).replace("&amp;", "&") if m else None


class TestBrowsePaging:
    def test_first_page_clamped_at_bound(self, web):
        grid, app, browser = web
        r = browser.get(f"/browse?path={grid.home}")
        assert r.code == 200
        assert len(set(re.findall(r"d\d{4}\.dat", r.text))) == PAGE_BOUND
        assert r.text.count("<tr>") <= PAGE_BOUND + 1   # rows + header
        assert next_link(r.text) is not None

    def test_cursor_link_reaches_every_object(self, web):
        grid, app, browser = web
        seen, url = set(), f"/browse?path={grid.home}"
        while url is not None:
            r = browser.get(url)
            assert r.code == 200
            seen.update(re.findall(r"d\d{4}\.dat", r.text))
            url = next_link(r.text)
        assert len(seen) == N_OBJECTS

    def test_small_collection_has_no_next_link(self, web):
        grid, app, browser = web
        r = browser.get("/browse?path=/demozone/home")
        assert next_link(r.text) is None


class TestQueryPaging:
    def test_results_clamped_with_roundtripping_next_link(self, web):
        grid, app, browser = web
        # an unconditioned query matches every object under home
        r = browser.post("/query", {"scope": grid.home, "system": "1"})
        assert r.code == 200
        first = set(re.findall(r"d\d{4}\.dat", r.text))
        assert len(first) <= PAGE_BOUND
        link = next_link(r.text)
        assert link is not None and "cursor=" in link and "run=1" in link
        seen, url = set(first), link
        while url is not None:
            r = browser.get(url)
            assert r.code == 200
            seen.update(re.findall(r"d\d{4}\.dat", r.text))
            url = next_link(r.text)
        assert len(seen) == N_OBJECTS

    def test_conditions_survive_the_next_link(self, web):
        grid, app, browser = web
        for i in range(3):
            grid.curator.add_metadata(f"{grid.home}/d{i:04d}.dat",
                                      "pick", "yes")
        r = browser.post("/query", {
            "scope": grid.home, "attr1": "pick", "op1": "=",
            "value1": "yes", "show1": "1"})
        hits = set(re.findall(r"d\d{4}\.dat", r.text))
        assert hits == {"d0000.dat", "d0001.dat", "d0002.dat"}
        assert next_link(r.text) is None   # 3 hits fit one page

    def test_query_form_still_served_without_run(self, web):
        grid, app, browser = web
        r = browser.get(f"/query?scope={grid.home}")
        assert r.code == 200 and "<form" in r.text


class TestViewClamp:
    def test_query_results_view_honors_page_size(self, web):
        grid, app, browser = web
        client = grid.curator
        html = views.query_results(client, grid.home, [], False, True,
                                   page_size=7)
        assert len(set(re.findall(r"d\d{4}\.dat", html))) == 7
        assert next_link(html) is not None

    def test_browse_view_honors_page_size(self, web):
        grid, app, browser = web
        html = views.browse(grid.curator, grid.home, page_size=5)
        assert html.count("<tr>") <= 5 + 1
        assert next_link(html) is not None
