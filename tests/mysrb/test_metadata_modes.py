"""Tests for MySRB's 'creative metadata' display modes (paper §5):
inlineable URLs, related-object hot links with optional inlining, and
file-based metadata viewing."""

import pytest

from repro.mysrb import Browser, MySrbApp
from repro.workload import standard_grid


@pytest.fixture
def web():
    grid = standard_grid()
    grid.admin.grant("/demozone", "sekar@sdsc", "read")
    app = MySrbApp(grid.fed)
    browser = Browser(app)
    browser.login("sekar@sdsc", "secret")
    return grid, browser


class TestUrlMetadata:
    def test_plain_url_metadata_is_hotlink(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/o.txt", b"x")
        grid.fed.web.publish("http://museum.org/ref", b"<b>ref</b>")
        grid.curator.add_metadata(f"{grid.home}/o.txt", "reference",
                                  "http://museum.org/ref")
        page = browser.get(f"/open?path={grid.home}/o.txt")
        assert "href='http://museum.org/ref'" in page.text
        assert "<b>ref</b>" not in page.text      # not inlined

    def test_inlineable_url_contents_shown(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/o2.txt", b"x")
        grid.fed.web.publish("http://museum.org/thumb", b"<b>thumbnail</b>")
        grid.curator.add_metadata(f"{grid.home}/o2.txt", "thumb",
                                  "http://museum.org/thumb", units="inline")
        page = browser.get(f"/open?path={grid.home}/o2.txt")
        assert "<b>thumbnail</b>" in page.text    # inlined live

    def test_dead_inline_url_degrades_gracefully(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/o3.txt", b"x")
        grid.curator.add_metadata(f"{grid.home}/o3.txt", "thumb",
                                  "http://gone.org/x", units="inline")
        page = browser.get(f"/open?path={grid.home}/o3.txt")
        assert page.code == 200
        assert "unavailable" in page.text


class TestRelatedObjects:
    def test_srb_path_value_becomes_hotlink(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/a.txt", b"x")
        grid.curator.ingest(f"{grid.home}/b.txt", b"y")
        grid.curator.add_metadata(f"{grid.home}/a.txt", "related",
                                  f"{grid.home}/b.txt")
        page = browser.get(f"/open?path={grid.home}/a.txt")
        assert f"/open?path={grid.home.replace('/', '%2F')}%2Fb.txt" \
            in page.text

    def test_inline_related_object_embedded(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/big.img", b"IMAGE")
        grid.curator.ingest(f"{grid.home}/thumb.txt", b"tiny preview")
        grid.curator.add_metadata(f"{grid.home}/big.img", "thumbnail",
                                  f"{grid.home}/thumb.txt", units="inline")
        page = browser.get(f"/open?path={grid.home}/big.img")
        assert "tiny preview" in page.text


class TestFileBasedMetadata:
    def test_metadata_file_contents_displayed(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/obj.txt", b"x")
        grid.curator.ingest(f"{grid.home}/obj.meta",
                            b"site = sevilleta\nbands = 224\n")
        grid.curator.add_metadata(f"{grid.home}/obj.txt", "metadata-file",
                                  f"{grid.home}/obj.meta",
                                  meta_class="file-based")
        page = browser.get(f"/open?path={grid.home}/obj.txt")
        assert "site = sevilleta" in page.text
        assert "metadata file" in page.text

    def test_same_file_attachable_to_many_objects(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/shared.meta", b"k = v\n")
        for name in ("x1.txt", "x2.txt"):
            grid.curator.ingest(f"{grid.home}/{name}", b"x")
            grid.curator.add_metadata(f"{grid.home}/{name}", "metadata-file",
                                      f"{grid.home}/shared.meta",
                                      meta_class="file-based")
            page = browser.get(f"/open?path={grid.home}/{name}")
            assert "k = v" in page.text

    def test_file_based_not_queryable(self, web):
        """'This metadata is used only for viewing and cannot take part
        in querying (at the current time).'"""
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/fb.txt", b"x")
        grid.curator.ingest(f"{grid.home}/fb.meta", b"hidden = gem\n")
        grid.curator.add_metadata(f"{grid.home}/fb.txt", "metadata-file",
                                  f"{grid.home}/fb.meta",
                                  meta_class="file-based")
        from repro.mcat import Condition
        # the triple inside the file is NOT in the catalog
        r = grid.curator.query(grid.home, [Condition("hidden", "=", "gem")])
        assert len(r.rows) == 0


class TestExtractionViaForm:
    def test_metadata_form_extract_method(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/hx.fits",
                            b"SIMPLE  = T\nRA      = 99.9\nEND\n",
                            data_type="fits image")
        browser.post("/metadata", {"path": f"{grid.home}/hx.fits",
                                   "extract_method": "fits header"})
        md = {m["attr"]: m["value"]
              for m in grid.curator.get_metadata(f"{grid.home}/hx.fits")}
        assert md["RA"] == "99.9"

    def test_metadata_form_copy_from(self, web):
        grid, browser = web
        grid.curator.ingest(f"{grid.home}/src9.txt", b"x")
        grid.curator.ingest(f"{grid.home}/dst9.txt", b"y")
        grid.curator.add_metadata(f"{grid.home}/src9.txt", "k", "v")
        browser.post("/metadata", {"path": f"{grid.home}/dst9.txt",
                                   "copy_from": f"{grid.home}/src9.txt"})
        md = grid.curator.get_metadata(f"{grid.home}/dst9.txt")
        assert md[0]["attr"] == "k"
