"""Property tests for the placement predictor (``repro.policy.stats``).

Three properties the ``observed`` policy's correctness rests on:

* the EWMA never leaves the envelope of its samples;
* the failure score decays monotonically in virtual time (and halves
  every half-life);
* the ranking ``predict_s`` induces over paths is stable under any
  permutation of identical observations — history order across *paths*
  must not matter when the per-path evidence is the same.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.simnet import WAN, LinkSpec
from repro.policy import Ewma, PathStats

positive_floats = st.floats(min_value=1e-3, max_value=1e9,
                            allow_nan=False, allow_infinity=False)


class TestEwmaBounds:
    @given(samples=st.lists(positive_floats, min_size=1, max_size=60),
           alpha=st.floats(min_value=0.01, max_value=1.0))
    def test_value_within_observed_min_max(self, samples, alpha):
        ewma = Ewma(alpha=alpha)
        for s in samples:
            ewma.update(s)
        lo, hi = min(samples), max(samples)
        # convex combination: stays inside the sample envelope (modulo
        # one ulp of float rounding)
        assert ewma.value >= lo * (1 - 1e-12)
        assert ewma.value <= hi * (1 + 1e-12)
        assert ewma.count == len(samples)
        assert ewma.min == lo and ewma.max == hi

    @given(sample=positive_floats)
    def test_first_sample_is_the_value(self, sample):
        ewma = Ewma(alpha=0.3)
        ewma.update(sample)
        assert ewma.value == sample


class TestFailureDecay:
    @given(fail_times=st.lists(
               st.floats(min_value=0.0, max_value=1e5,
                         allow_nan=False, allow_infinity=False),
               min_size=1, max_size=10),
           offsets=st.tuples(
               st.floats(min_value=0.0, max_value=1e6, allow_nan=False),
               st.floats(min_value=0.0, max_value=1e6, allow_nan=False)),
           half_life=st.floats(min_value=1.0, max_value=1e4))
    def test_monotone_in_virtual_time(self, fail_times, offsets,
                                      half_life):
        stats = PathStats(failure_half_life_s=half_life)
        for t in sorted(fail_times):
            stats.observe_failure("a", "b", now=t)
        t_last = max(fail_times)
        d1, d2 = min(offsets), max(offsets)
        early = stats.failure_score("a", "b", t_last + d1)
        late = stats.failure_score("a", "b", t_last + d2)
        assert early >= late >= 0.0

    def test_halves_every_half_life(self):
        stats = PathStats(failure_half_life_s=100.0)
        stats.observe_failure("a", "b", now=50.0)
        s0 = stats.failure_score("a", "b", 50.0)
        assert s0 == 1.0
        assert math.isclose(stats.failure_score("a", "b", 150.0), 0.5)
        assert math.isclose(stats.failure_score("a", "b", 250.0), 0.25)

    def test_each_failure_adds_one_to_the_decayed_score(self):
        stats = PathStats(failure_half_life_s=100.0)
        stats.observe_failure("a", "b", now=0.0)
        stats.observe_failure("a", "b", now=100.0)   # 0.5 decayed + 1
        assert math.isclose(stats.failure_score("a", "b", 100.0), 1.5)

    def test_unknown_path_scores_zero(self):
        stats = PathStats()
        assert stats.failure_score("x", "y", 123.0) == 0.0


class TestRankingPermutationStable:
    @given(data=st.data(),
           n_paths=st.integers(min_value=2, max_value=6))
    @settings(max_examples=50)
    def test_rank_invariant_under_observation_order(self, data, n_paths):
        """Identical per-path observations, any interleaving: same
        ranking."""
        nbytes = 1_000_000
        observations = []
        for i in range(n_paths):
            rate = 1e6 * (i + 1)
            repeats = data.draw(st.integers(min_value=1, max_value=4),
                                label=f"repeats[{i}]")
            observations += [(f"h{i}", "dst", nbytes, nbytes / rate)] \
                * repeats
        shuffled = data.draw(st.permutations(observations),
                             label="interleaving")

        def rank(obs_seq):
            stats = PathStats()
            for src, dst, size, cost in obs_seq:
                stats.observe_transfer(src, dst, size, cost, now=0.0)
            return sorted(
                (f"h{i}" for i in range(n_paths)),
                key=lambda h: stats.predict_s(h, "dst", nbytes,
                                              fallback=WAN))

        assert rank(observations) == rank(shuffled)


class TestPredict:
    def test_unseen_path_uses_the_fallback_prior(self):
        stats = PathStats()
        prior = LinkSpec(latency_s=0.01, bandwidth_bps=1e6)
        assert stats.predict_s("a", "b", 1_000_000, fallback=prior) \
            == 0.01 + 1.0

    def test_measured_path_beats_the_prior_when_faster(self):
        stats = PathStats()
        nbytes = 1_000_000
        for _ in range(5):
            stats.observe_transfer("fast", "dst", nbytes, nbytes / 2e7,
                                   now=0.0)
        assert stats.predict_s("fast", "dst", nbytes, fallback=WAN) \
            < WAN.cost(nbytes)

    def test_small_messages_feed_latency_not_rate(self):
        stats = PathStats()
        stats.observe_transfer("a", "b", 64, 0.04, now=0.0)
        rec = stats._paths[("a", "b")]
        assert rec.latency.value == 0.04
        assert rec.rate.value is None
