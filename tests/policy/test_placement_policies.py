"""Unit tests for the placement engine and its policies."""

import pytest

from repro.core.replication import ReplicaSelector
from repro.errors import ReplicaUnavailable, ReplicationError
from repro.net.simnet import LAN, WAN, LinkSpec, Network
from repro.policy import (
    PLACEMENT_POLICIES,
    NearestPolicy,
    PlacementEngine,
)
from repro.storage.memfs import MemFsDriver
from repro.storage.resource import PhysicalResource, ResourceRegistry


def build_grid(n=3, links=None):
    """A client host plus ``n`` storage hosts ``h1..hn`` with resources
    ``res1..resn``; ``links[i]`` overrides the client<->hi link."""
    net = Network()
    net.add_host("client")
    reg = ResourceRegistry(net)
    for i in range(1, n + 1):
        net.add_host(f"h{i}")
        if links and links.get(i):
            net.set_link("client", f"h{i}", links[i])
        reg.add_physical(PhysicalResource(f"res{i}", f"h{i}",
                                          MemFsDriver()))
    return net, reg


def replicas(n=3, **overrides):
    return [dict({"replica_num": i, "resource": f"res{i}",
                  "is_dirty": False, "container_oid": None,
                  "physical_path": f"/p{i}", "size": 1000},
                 **overrides) for i in range(1, n + 1)]


class TestEngineBasics:
    def test_unknown_policy_rejected(self):
        net, reg = build_grid()
        with pytest.raises(ReplicationError):
            PlacementEngine(reg, net, policy="quantum")

    def test_all_policies_construct(self):
        for policy in PLACEMENT_POLICIES:
            net, reg = build_grid()
            engine = PlacementEngine(reg, net, policy=policy)
            assert engine.policy_name == policy

    def test_empty_replica_list_orders_empty(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net)
        assert engine.order_replicas([]) == []

    def test_failover_chain_filters_dirty_and_down(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net)
        reps = replicas()
        reps[0]["is_dirty"] = True
        net.set_down("h2")
        chain = engine.failover_chain(reps, from_host="client")
        assert [r["replica_num"] for r in chain] == [3]
        net.set_down("h3")
        with pytest.raises(ReplicaUnavailable):
            engine.failover_chain(reps, from_host="client")

    def test_legacy_selector_facade_answers_from_engine(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="round-robin")
        sel = engine.legacy_selector
        assert sel.policy == "round-robin"
        first = sel.order(replicas())
        second = engine.order_replicas(replicas())
        # one shared rotation counter: facade call advanced it
        assert first[0]["replica_num"] == 1
        assert second[0]["replica_num"] == 2


class TestStaticPoliciesMatchLegacySelector:
    """The engine's static policies are the historical ``ReplicaSelector``
    semantics, state machines included."""

    @pytest.mark.parametrize("policy",
                             ("primary", "round-robin", "random", "nearest"))
    def test_order_sequences_identical(self, policy):
        net, reg = build_grid(links={1: WAN, 2: LAN, 3: WAN})
        engine = PlacementEngine(reg, net, policy=policy)
        selector = ReplicaSelector(reg, net, policy=policy)
        for _ in range(7):
            got = engine.order_replicas(replicas(), from_host="client")
            want = selector.order(replicas(), from_host="client")
            assert [r["replica_num"] for r in got] \
                == [r["replica_num"] for r in want]


class TestNearestTieBreak:
    def test_ties_break_by_replica_num(self):
        # res1/res2 on different hosts, same (default) link latency
        net, reg = build_grid(n=3, links={3: LAN})
        engine = PlacementEngine(reg, net, policy="nearest")
        ordered = engine.order_replicas(replicas(), from_host="client")
        # h3 is nearest; h1/h2 tie on the default link and must come
        # back lowest-replica-number first
        assert [r["replica_num"] for r in ordered] == [3, 1, 2]

    def test_tie_break_ignores_input_order(self):
        net, reg = build_grid(n=3)
        engine = PlacementEngine(reg, net, policy="nearest")
        fwd = engine.order_replicas(replicas(), from_host="client")
        rev = engine.order_replicas(list(reversed(replicas())),
                                    from_host="client")
        assert [r["replica_num"] for r in fwd] \
            == [r["replica_num"] for r in rev] == [1, 2, 3]

    def test_documented_in_the_policy_docstring(self):
        assert "(latency, replica_num)" in (
            NearestPolicy.__doc__ + NearestPolicy.order.__doc__
            if NearestPolicy.order.__doc__ else NearestPolicy.__doc__) \
            or "replica_num" in NearestPolicy.__doc__


class TestObservedPolicy:
    def test_cold_start_is_primary_like(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        ordered = engine.order_replicas(replicas(), from_host="client")
        assert [r["replica_num"] for r in ordered] == [1, 2, 3]

    def test_prefers_the_measured_fast_path(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        nbytes = 1_000_000
        # h3 measured much faster than the default prior; h1 much slower
        for _ in range(3):
            engine.stats.observe_transfer("h3", "client", nbytes,
                                          nbytes / 5e7, now=0.0)
            engine.stats.observe_transfer("h1", "client", nbytes,
                                          nbytes / 1e5, now=0.0)
        ordered = engine.order_replicas(replicas(), from_host="client",
                                        size_hint=nbytes)
        assert [r["replica_num"] for r in ordered] == [3, 2, 1]

    def test_failures_quarantine_and_decay_restores(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        nbytes = 1_000_000
        for _ in range(3):
            engine.stats.observe_transfer("h1", "client", nbytes,
                                          nbytes / 5e7, now=0.0)
        # two failures on the measured-fastest path push it last anyway
        engine.stats.observe_failure("h1", "client", now=net.clock.now)
        engine.stats.observe_failure("h1", "client", now=net.clock.now)
        ordered = engine.order_replicas(replicas(), from_host="client",
                                        size_hint=nbytes)
        assert ordered[-1]["replica_num"] == 1
        # several half-lives later the score has decayed under the
        # quarantine threshold and the fast path leads again
        net.clock.advance(engine.stats.failure_half_life_s * 8)
        ordered = engine.order_replicas(replicas(), from_host="client",
                                        size_hint=nbytes)
        assert ordered[0]["replica_num"] == 1

    def test_write_destinations_ranked_by_measured_push(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        nbytes = 500_000
        for _ in range(3):
            engine.stats.observe_transfer("client", "h2", nbytes,
                                          nbytes / 5e7, now=0.0)
        res_list = [reg.physical(f"res{i}") for i in (1, 2, 3)]
        ordered = engine.order_resources(res_list, from_host="client",
                                         size_hint=nbytes)
        assert ordered[0].name == "res2"

    def test_sync_source_prefers_cheapest_total_push(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        nbytes = 1000
        for _ in range(3):
            engine.stats.observe_transfer("h2", "h3", nbytes,
                                          nbytes / 5e7, now=0.0)
        clean = replicas(n=2)
        ordered = engine.sync_source_order(clean, ["h3"],
                                           size_hint=nbytes)
        assert ordered[0]["replica_num"] == 2

    def test_static_policy_sync_source_keeps_catalog_order(self):
        net, reg = build_grid()
        engine = PlacementEngine(reg, net, policy="primary")
        clean = replicas(n=3)
        assert engine.sync_source_order(clean, ["h9"]) == clean


class TestContainerOrdering:
    def _archive_grid(self):
        net, reg = build_grid(n=2)
        net.add_host("h3")
        reg.add_physical(PhysicalResource("arch", "h3", MemFsDriver(),
                                          rtype="archive"))
        reps = replicas(n=2)
        reps.append({"replica_num": 3, "resource": "arch",
                     "is_dirty": False, "container_oid": None,
                     "physical_path": "/p3", "size": 1000})
        return net, reg, reps

    def test_cache_tier_always_first(self):
        net, reg, reps = self._archive_grid()
        for policy in PLACEMENT_POLICIES:
            engine = PlacementEngine(reg, net, policy=policy)
            ordered = engine.order_container_replicas(
                list(reversed(reps)), from_host="client")
            assert ordered[-1]["resource"] == "arch"

    def test_observed_reorders_within_the_cache_tier(self):
        net, reg, reps = self._archive_grid()
        engine = PlacementEngine(reg, net, policy="observed")
        nbytes = 1_000_000
        for _ in range(3):
            engine.stats.observe_transfer("h2", "client", nbytes,
                                          nbytes / 5e7, now=0.0)
        ordered = engine.order_container_replicas(reps,
                                                  from_host="client")
        assert [r["replica_num"] for r in ordered] == [2, 1, 3]


class TestChooseStripes:
    def _engine(self, n=8):
        net, reg = build_grid(n=n)
        return PlacementEngine(reg, net), reg

    def test_single_candidate_never_stripes(self):
        engine, reg = self._engine()
        assert engine.choose_stripes([reg.physical("res1")], 10_000_000,
                                     from_host="client") == 1

    def test_small_object_reads_whole(self):
        engine, reg = self._engine()
        cands = [reg.physical(f"res{i}") for i in range(1, 5)]
        # probes dominate: one WAN latency beats extra session opens
        assert engine.choose_stripes(cands, 1000,
                                     from_host="client") == 1

    def test_large_object_recruits_multiple_paths(self):
        engine, reg = self._engine()
        cands = [reg.physical(f"res{i}") for i in range(1, 9)]
        k = engine.choose_stripes(cands, 8 * 1024 * 1024,
                                  from_host="client")
        assert k > 1

    def test_slow_measured_path_not_recruited(self):
        engine, reg = self._engine(n=3)
        nbytes = 4_000_000
        # res3's path measured pathologically slow: recruiting it would
        # dominate the makespan, so auto stops at k=2
        for _ in range(3):
            engine.stats.observe_transfer("h3", "client", nbytes,
                                          nbytes / 1e4, now=0.0)
        cands = [reg.physical(f"res{i}") for i in (1, 2, 3)]
        assert engine.choose_stripes(cands, nbytes,
                                     from_host="client") == 2
