"""Property: cursor pagination is stable under concurrent mutation.

A keyset scan interleaved with inserts and deletes must deliver every
row that existed for the *whole* scan exactly once — no duplicates, no
skips — because the cursor is a path position, not an offset (an
offset cursor shifts when rows before it appear or vanish).  Checked on
the plain catalog and across a four-way sharded one, whose pages are a
fan-out+merge over per-shard keyset scans.
"""

from hypothesis import given, settings, strategies as st

from repro.mcat import Mcat, ShardedMcat
from repro.util.clock import SimClock

OWNER = "sekar@sdsc"
ZONE = "demozone"
COLL = f"/{ZONE}/scan"

INITIAL_POOL = [f"f{i:02d}" for i in range(30)]
INSERT_POOL = [f"g{i:02d}" for i in range(30)]


def build(kind, names):
    m = (Mcat(zone=ZONE, clock=SimClock()) if kind == "plain"
         else ShardedMcat(zone=ZONE, clock=SimClock(), shards=4))
    m.create_collection(COLL, OWNER, now=0.0)
    oids = {}
    for name in sorted(names):
        oids[name] = m.create_object(f"{COLL}/{name}", "data", OWNER,
                                     now=0.0)
    return m, oids


@settings(max_examples=40, deadline=None)
@given(
    kind=st.sampled_from(["plain", "sharded"]),
    initial=st.sets(st.sampled_from(INITIAL_POOL), min_size=4, max_size=20),
    page_size=st.integers(min_value=1, max_value=6),
    mutations=st.lists(
        st.tuples(st.sampled_from(["insert", "delete"]),
                  st.integers(min_value=0, max_value=29)),
        max_size=12),
)
def test_stable_rows_delivered_exactly_once(kind, initial, page_size,
                                            mutations):
    m, oids = build(kind, initial)
    mutations = list(mutations)
    inserted = set()
    survivors = set(initial)     # rows present from scan start to end

    seen, cursor = [], None
    while True:
        batch, cursor = m.objects_in_collection_page(
            COLL, cursor=cursor, limit=page_size)
        seen.extend(o["path"] for o in batch)
        if cursor is None:
            break
        # interleave one mutation between page fetches
        if mutations:
            op, idx = mutations.pop(0)
            if op == "insert":
                name = INSERT_POOL[idx]
                if name not in inserted:
                    oids[name] = m.create_object(f"{COLL}/{name}", "data",
                                                 OWNER, now=1.0)
                    inserted.add(name)
            else:
                name = INITIAL_POOL[idx]
                if name in survivors:
                    m.delete_object(oids[name])
                    survivors.discard(name)

    # no path is ever delivered twice (the cursor is strictly monotone)
    assert len(seen) == len(set(seen))
    assert seen == sorted(seen)
    # every row that existed for the whole scan arrived exactly once
    stable = {f"{COLL}/{name}" for name in survivors}
    assert stable <= set(seen)
    # nothing outside the union of initial+inserted ever appears
    legal = {f"{COLL}/{n}" for n in set(initial) | inserted}
    assert set(seen) <= legal
