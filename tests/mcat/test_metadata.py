"""Unit tests for the five metadata classes, structural metadata, ACL rows,
annotations and audit in MCAT."""

import pytest

from repro.errors import (
    MandatoryMetadataMissing,
    MetadataError,
    NoSuchSchema,
    VocabularyViolation,
)
from repro.mcat import Mcat

OWNER = "sekar@sdsc"


@pytest.fixture
def mcat():
    m = Mcat()
    m.create_collection("/demozone/cultures", OWNER, now=0.0)
    return m


@pytest.fixture
def oid(mcat):
    return mcat.create_object("/demozone/cultures/x", "data", OWNER, now=0.0,
                              data_type="fits image")


class TestUserMetadata:
    def test_add_get(self, mcat, oid):
        mcat.add_metadata("object", oid, "species", "ibis", by=OWNER, now=1.0,
                          units=None)
        rows = mcat.get_metadata("object", oid)
        assert rows[0]["attr"] == "species" and rows[0]["value"] == "ibis"

    def test_triplets_have_units(self, mcat, oid):
        mcat.add_metadata("object", oid, "wingspan", "1.2", by=OWNER, now=0.0,
                          units="m")
        assert mcat.get_metadata("object", oid)[0]["units"] == "m"

    def test_numeric_mirror_populated(self, mcat, oid):
        mcat.add_metadata("object", oid, "mag", "4.5", by=OWNER, now=0.0)
        assert mcat.get_metadata("object", oid)[0]["value_num"] == 4.5

    def test_non_numeric_mirror_null(self, mcat, oid):
        mcat.add_metadata("object", oid, "name", "ibis", by=OWNER, now=0.0)
        assert mcat.get_metadata("object", oid)[0]["value_num"] is None

    def test_no_limit_on_count(self, mcat, oid):
        for i in range(50):
            mcat.add_metadata("object", oid, f"attr{i}", str(i), by=OWNER,
                              now=0.0)
        assert len(mcat.get_metadata("object", oid)) == 50

    def test_multivalued_attribute_allowed(self, mcat, oid):
        mcat.add_metadata("object", oid, "tag", "a", by=OWNER, now=0.0)
        mcat.add_metadata("object", oid, "tag", "b", by=OWNER, now=0.0)
        assert len(mcat.get_metadata("object", oid)) == 2

    def test_empty_attr_rejected(self, mcat, oid):
        with pytest.raises(MetadataError):
            mcat.add_metadata("object", oid, "", "v", by=OWNER, now=0.0)

    def test_bad_target_kind(self, mcat, oid):
        with pytest.raises(MetadataError):
            mcat.add_metadata("resource", oid, "a", "v", by=OWNER, now=0.0)

    def test_update(self, mcat, oid):
        mid = mcat.add_metadata("object", oid, "k", "v1", by=OWNER, now=0.0)
        mcat.update_metadata(mid, "2.5", units="kg")
        row = mcat.get_metadata("object", oid)[0]
        assert (row["value"], row["value_num"], row["units"]) == \
            ("2.5", 2.5, "kg")

    def test_delete(self, mcat, oid):
        mid = mcat.add_metadata("object", oid, "k", "v", by=OWNER, now=0.0)
        mcat.delete_metadata(mid)
        assert mcat.get_metadata("object", oid) == []

    def test_collection_metadata(self, mcat):
        cid = mcat.get_collection("/demozone/cultures")["cid"]
        mcat.add_metadata("collection", cid, "theme", "avian", by=OWNER,
                          now=0.0)
        assert mcat.get_metadata("collection", cid)[0]["value"] == "avian"


class TestTypeOrientedMetadata:
    def test_dublin_core_globally_available(self, mcat, oid):
        mid = mcat.add_metadata("object", oid, "Title", "Avian notes",
                                by=OWNER, now=0.0, meta_class="type",
                                schema_name="dublin-core")
        row = mcat.get_metadata("object", oid, meta_class="type")[0]
        assert row["schema_name"] == "dublin-core"

    def test_unknown_schema_rejected(self, mcat, oid):
        with pytest.raises(NoSuchSchema):
            mcat.add_metadata("object", oid, "Title", "x", by=OWNER, now=0.0,
                              meta_class="type", schema_name="nope")

    def test_unknown_element_rejected(self, mcat, oid):
        with pytest.raises(MetadataError):
            mcat.add_metadata("object", oid, "NotAnElement", "x", by=OWNER,
                              now=0.0, meta_class="type",
                              schema_name="dublin-core")

    def test_filter_by_class(self, mcat, oid):
        mcat.add_metadata("object", oid, "k", "v", by=OWNER, now=0.0)
        mcat.add_metadata("object", oid, "Title", "t", by=OWNER, now=0.0,
                          meta_class="type", schema_name="dublin-core")
        assert len(mcat.get_metadata("object", oid, meta_class="user")) == 1
        assert len(mcat.get_metadata("object", oid, meta_class="type")) == 1


class TestCopyMetadata:
    def test_copy_all_classes(self, mcat, oid):
        dst = mcat.create_object("/demozone/cultures/y", "data", OWNER,
                                 now=0.0)
        mcat.add_metadata("object", oid, "k", "v", by=OWNER, now=0.0,
                          units="u")
        mcat.add_metadata("object", oid, "Title", "t", by=OWNER, now=0.0,
                          meta_class="type", schema_name="dublin-core")
        copied = mcat.copy_metadata("object", oid, "object", dst, by=OWNER,
                                    now=1.0)
        assert copied == 2
        rows = mcat.get_metadata("object", dst)
        assert {r["attr"] for r in rows} == {"k", "Title"}
        assert rows[0]["units"] == "u" or rows[1]["units"] == "u"


class TestStructural:
    def test_defaults_applied(self, mcat):
        mcat.define_structural("/demozone/cultures", "culture",
                               default_value="avian")
        effective = mcat.validate_ingest_metadata("/demozone/cultures", {})
        assert effective == {"culture": "avian"}

    def test_mandatory_enforced(self, mcat):
        mcat.define_structural("/demozone/cultures", "curator",
                               mandatory=True)
        with pytest.raises(MandatoryMetadataMissing) as err:
            mcat.validate_ingest_metadata("/demozone/cultures", {})
        assert "curator" in err.value.names

    def test_mandatory_satisfied(self, mcat):
        mcat.define_structural("/demozone/cultures", "curator",
                               mandatory=True)
        eff = mcat.validate_ingest_metadata("/demozone/cultures",
                                            {"curator": "sekar"})
        assert eff["curator"] == "sekar"

    def test_vocabulary_enforced(self, mcat):
        mcat.define_structural("/demozone/cultures", "medium",
                               vocabulary=["image", "movie", "text"])
        with pytest.raises(VocabularyViolation):
            mcat.validate_ingest_metadata("/demozone/cultures",
                                          {"medium": "hologram"})

    def test_vocabulary_allows_listed(self, mcat):
        mcat.define_structural("/demozone/cultures", "medium",
                               vocabulary=["image", "movie"])
        mcat.validate_ingest_metadata("/demozone/cultures",
                                      {"medium": "movie"})

    def test_inherited_from_ancestor(self, mcat):
        # "MetaCore for Cultures" on the parent governs sub-collections
        mcat.create_collection("/demozone/cultures/avian", OWNER, now=0.0)
        mcat.define_structural("/demozone/cultures", "culture",
                               mandatory=True)
        with pytest.raises(MandatoryMetadataMissing):
            mcat.validate_ingest_metadata("/demozone/cultures/avian", {})

    def test_structural_for_lists_requirements(self, mcat):
        mcat.define_structural("/demozone/cultures", "a", comment="why")
        reqs = mcat.structural_for("/demozone/cultures")
        assert reqs[0]["attr"] == "a" and reqs[0]["comment"] == "why"

    def test_unknown_collection_rejected(self, mcat):
        from repro.errors import NoSuchCollection
        with pytest.raises(NoSuchCollection):
            mcat.define_structural("/demozone/ghost", "a")


class TestAnnotations:
    def test_add_and_list(self, mcat, oid):
        mcat.add_annotation("object", oid, "comment", "moore@sdsc",
                            "nice ibis", now=1.0, location="page 3")
        anns = mcat.annotations_for("object", oid)
        assert anns[0]["author"] == "moore@sdsc"
        assert anns[0]["location"] == "page 3"
        assert anns[0]["created_at"] == 1.0

    def test_types_validated(self, mcat, oid):
        with pytest.raises(MetadataError):
            mcat.add_annotation("object", oid, "graffiti", OWNER, "x",
                                now=0.0)

    def test_all_paper_types_accepted(self, mcat, oid):
        for t in ("comment", "rating", "errata", "dialogue", "annotation"):
            mcat.add_annotation("object", oid, t, OWNER, "x", now=0.0)
        assert len(mcat.annotations_for("object", oid)) == 5

    def test_delete(self, mcat, oid):
        aid = mcat.add_annotation("object", oid, "comment", OWNER, "x",
                                  now=0.0)
        mcat.delete_annotation(aid)
        assert mcat.annotations_for("object", oid) == []


class TestAclRows:
    def test_grant_and_list(self, mcat, oid):
        mcat.grant("object", oid, "moore@sdsc", "read")
        grants = mcat.grants_for("object", oid)
        assert grants[0]["permission"] == "read"

    def test_regrant_replaces(self, mcat, oid):
        mcat.grant("object", oid, "moore@sdsc", "read")
        mcat.grant("object", oid, "moore@sdsc", "write")
        grants = mcat.grants_for("object", oid)
        assert len(grants) == 1 and grants[0]["permission"] == "write"

    def test_revoke(self, mcat, oid):
        mcat.grant("object", oid, "moore@sdsc", "read")
        mcat.revoke("object", oid, "moore@sdsc")
        assert mcat.grants_for("object", oid) == []

    def test_bad_permission_rejected(self, mcat, oid):
        with pytest.raises(MetadataError):
            mcat.grant("object", oid, "x@y", "root")


class TestAudit:
    def test_record_and_query(self, mcat):
        mcat.record_audit(1.0, OWNER, "get", "/demozone/cultures/x")
        mcat.record_audit(2.0, "moore@sdsc", "get", "/demozone/cultures/x")
        mcat.record_audit(3.0, OWNER, "delete", "/demozone/cultures/x",
                          ok=False)
        assert len(mcat.audit_query()) == 3
        assert len(mcat.audit_query(principal=OWNER)) == 2
        assert len(mcat.audit_query(action="get")) == 2
        assert len(mcat.audit_query(principal=OWNER, action="get")) == 1

    def test_target_filter(self, mcat):
        mcat.record_audit(1.0, OWNER, "get", "/a")
        mcat.record_audit(1.0, OWNER, "get", "/b")
        assert len(mcat.audit_query(target="/a")) == 1

    def test_failure_recorded(self, mcat):
        mcat.record_audit(1.0, OWNER, "login", OWNER, ok=False)
        assert mcat.audit_query()[0]["ok"] is False
