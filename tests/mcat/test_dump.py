"""Tests for catalog export/import (catalog technology migration)."""

import json

import pytest

from repro.errors import MetadataError
from repro.mcat import Condition, Mcat, search
from repro.mcat.dump import (
    DUMP_FORMAT_VERSION,
    export_catalog,
    import_catalog,
    migrate_catalog,
)

OWNER = "sekar@sdsc"


@pytest.fixture
def mcat():
    m = Mcat()
    m.create_collection("/demozone/c", OWNER, now=1.0)
    oid = m.create_object("/demozone/c/x.fits", "data", OWNER, now=2.0,
                          data_type="fits image", size=100,
                          checksum="abc123")
    m.add_replica(oid, "res1", "/p1", 100, now=2.0)
    m.add_replica(oid, "res2", "/p2", 100, now=2.5)
    m.add_metadata("object", oid, "RA", "10.5", by=OWNER, now=3.0,
                   units="deg")
    m.add_annotation("object", oid, "comment", OWNER, "nice tile", now=3.5)
    m.grant("object", oid, "moore@sdsc", "read")
    m.define_structural("/demozone/c", "survey", mandatory=True)
    m.record_audit(4.0, OWNER, "get", "/demozone/c/x.fits")
    return m


class TestRoundtrip:
    def test_all_tables_preserved(self, mcat):
        restored = migrate_catalog(mcat)
        for table in ("collections", "objects", "replicas", "metadata",
                      "annotations", "acls", "structural_meta", "audit"):
            assert restored.db.table(table).all_rows() == \
                mcat.db.table(table).all_rows(), f"table {table} differs"

    def test_objects_resolvable_after_restore(self, mcat):
        restored = migrate_catalog(mcat)
        obj = restored.get_object("/demozone/c/x.fits")
        assert obj["checksum"] == "abc123"
        assert len(restored.replicas(obj["oid"])) == 2

    def test_queries_identical_after_restore(self, mcat):
        restored = migrate_catalog(mcat)
        q = [Condition("RA", ">", "10")]
        assert search(mcat, "/demozone", q).rows == \
            search(restored, "/demozone", q).rows

    def test_structural_rules_survive(self, mcat):
        restored = migrate_catalog(mcat)
        from repro.errors import MandatoryMetadataMissing
        with pytest.raises(MandatoryMetadataMissing):
            restored.validate_ingest_metadata("/demozone/c", {})

    def test_id_counters_continue(self, mcat):
        restored = migrate_catalog(mcat)
        old_oid = mcat.get_object("/demozone/c/x.fits")["oid"]
        new_oid = restored.create_object("/demozone/c/y.fits", "data",
                                         OWNER, now=5.0)
        assert new_oid > old_oid        # no id reuse after migration

    def test_restored_catalog_independent(self, mcat):
        restored = migrate_catalog(mcat)
        restored.create_object("/demozone/c/only-new.fits", "data", OWNER,
                               now=5.0)
        assert mcat.find_object("/demozone/c/only-new.fits") is None

    def test_indexes_rebuilt(self, mcat):
        restored = migrate_catalog(mcat)
        md = restored.db.table("metadata")
        assert "attr" in md.indexed_columns()
        # index actually answers (not just declared)
        assert len(md.lookup_eq("attr", "RA")) == 1


class TestFormat:
    def test_dump_is_json_with_version(self, mcat):
        doc = json.loads(export_catalog(mcat))
        assert doc["format"] == DUMP_FORMAT_VERSION
        assert doc["zone"] == "demozone"
        assert "objects" in doc["tables"]

    def test_bad_json_rejected(self):
        with pytest.raises(MetadataError):
            import_catalog("{not json")

    def test_wrong_version_rejected(self, mcat):
        doc = json.loads(export_catalog(mcat))
        doc["format"] = 99
        with pytest.raises(MetadataError):
            import_catalog(json.dumps(doc))

    def test_dump_stable_across_exports(self, mcat):
        assert export_catalog(mcat) == export_catalog(mcat)

    def test_empty_catalog_roundtrip(self):
        m = Mcat(zone="fresh")
        restored = migrate_catalog(m)
        assert restored.collection_exists("/fresh")
        assert restored.count_objects() == 0
