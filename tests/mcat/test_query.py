"""Unit tests for the MySRB-style conjunctive attribute query."""

import pytest

from repro.errors import QueryError
from repro.mcat import Condition, DisplayOnly, Mcat, queryable_attributes, search

OWNER = "sekar@sdsc"


@pytest.fixture
def mcat():
    m = Mcat()
    m.create_collection("/demozone/survey", OWNER, now=0.0)
    m.create_collection("/demozone/survey/north", OWNER, now=0.0)
    m.create_collection("/demozone/other", OWNER, now=0.0)
    objs = [
        ("/demozone/survey/a.fits", {"RA": "10.5", "JMAG": "5.0",
                                     "SURVEY": "2MASS"}),
        ("/demozone/survey/b.fits", {"RA": "200.0", "JMAG": "12.0",
                                     "SURVEY": "2MASS"}),
        ("/demozone/survey/north/c.fits", {"RA": "350.1", "JMAG": "8.5",
                                           "SURVEY": "2MASS"}),
        ("/demozone/other/d.fits", {"RA": "10.5", "SURVEY": "DSS"}),
    ]
    for path, attrs in objs:
        oid = m.create_object(path, "data", OWNER, now=0.0,
                              data_type="fits image", size=1000)
        for attr, value in attrs.items():
            m.add_metadata("object", oid, attr, value, by=OWNER, now=0.0)
    return m


class TestConditions:
    def test_operator_validated(self):
        with pytest.raises(QueryError):
            Condition("a", "~=", "x")

    def test_condition_without_value_rejected(self, mcat):
        with pytest.raises(QueryError):
            search(mcat, "/demozone", [Condition("RA", "=", None)])


class TestSearch:
    def test_equality(self, mcat):
        r = search(mcat, "/demozone/survey", [Condition("SURVEY", "=", "2MASS")])
        assert len(r) == 3

    def test_scope_limits_to_subtree(self, mcat):
        r = search(mcat, "/demozone/survey/north",
                   [Condition("SURVEY", "=", "2MASS")])
        assert [row[0] for row in r.rows] == ["/demozone/survey/north/c.fits"]

    def test_query_across_collections_from_above(self, mcat):
        # "one can query across collections by being above the collections"
        r = search(mcat, "/demozone", [Condition("SURVEY", "=", "2MASS")])
        assert len(r) == 3

    def test_numeric_range(self, mcat):
        r = search(mcat, "/demozone/survey", [Condition("JMAG", "<", "9")])
        assert {row[0] for row in r.rows} == {
            "/demozone/survey/a.fits", "/demozone/survey/north/c.fits"}

    def test_numeric_not_lexicographic(self, mcat):
        # "12.0" < "5.0" lexicographically but not numerically
        r = search(mcat, "/demozone/survey", [Condition("JMAG", ">", "9")])
        assert [row[0] for row in r.rows] == ["/demozone/survey/b.fits"]

    def test_conjunction(self, mcat):
        r = search(mcat, "/demozone",
                   [Condition("SURVEY", "=", "2MASS"),
                    Condition("JMAG", ">=", "8"), Condition("JMAG", "<=", "9")])
        assert [row[0] for row in r.rows] == ["/demozone/survey/north/c.fits"]

    def test_not_equal(self, mcat):
        r = search(mcat, "/demozone", [Condition("SURVEY", "<>", "2MASS")])
        assert [row[0] for row in r.rows] == ["/demozone/other/d.fits"]

    def test_like(self, mcat):
        r = search(mcat, "/demozone", [Condition("RA", "like", "10%")])
        assert len(r) == 2

    def test_not_like(self, mcat):
        r = search(mcat, "/demozone/survey",
                   [Condition("RA", "not like", "1%")])
        assert {row[0] for row in r.rows} == {
            "/demozone/survey/b.fits", "/demozone/survey/north/c.fits"}

    def test_display_values_in_result(self, mcat):
        r = search(mcat, "/demozone/survey",
                   [Condition("JMAG", "<", "6", display=True)])
        assert r.columns == ["path", "JMAG"]
        assert r.rows == [("/demozone/survey/a.fits", "5.0")]

    def test_display_false_omits_column(self, mcat):
        r = search(mcat, "/demozone/survey",
                   [Condition("JMAG", "<", "6", display=False)])
        assert r.columns == ["path"]

    def test_display_only_checkbox(self, mcat):
        # check the box without using the attr in any condition
        r = search(mcat, "/demozone/survey",
                   [Condition("JMAG", "<", "6", display=False),
                    DisplayOnly("RA")])
        assert r.columns == ["path", "RA"]
        assert r.rows[0][1] == "10.5"

    def test_missing_attribute_never_matches(self, mcat):
        r = search(mcat, "/demozone/survey", [Condition("GHOST", "=", "x")])
        assert len(r) == 0

    def test_limit(self, mcat):
        r = search(mcat, "/demozone", [Condition("SURVEY", "=", "2MASS")],
                   limit=2)
        assert len(r) == 2

    def test_system_metadata(self, mcat):
        r = search(mcat, "/demozone",
                   [Condition("SYS:owner", "=", OWNER)],
                   include_system=True)
        assert len(r) == 4

    def test_system_size_numeric(self, mcat):
        r = search(mcat, "/demozone",
                   [Condition("SYS:size", ">", "500")], include_system=True)
        assert len(r) == 4

    def test_annotations_queryable(self, mcat):
        oid = mcat.get_object("/demozone/survey/a.fits")["oid"]
        mcat.add_annotation("object", oid, "rating", OWNER, "excellent",
                            now=0.0)
        r = search(mcat, "/demozone",
                   [Condition("ANN:rating", "like", "exc%")],
                   include_annotations=True)
        assert [row[0] for row in r.rows] == ["/demozone/survey/a.fits"]

    def test_result_dicts(self, mcat):
        r = search(mcat, "/demozone/survey", [Condition("JMAG", "<", "6")])
        assert r.dicts()[0]["path"] == "/demozone/survey/a.fits"


class TestQueryableAttributes:
    def test_names_from_subtree(self, mcat):
        names = queryable_attributes(mcat, "/demozone/survey")
        assert set(names) == {"RA", "JMAG", "SURVEY"}

    def test_scoped(self, mcat):
        names = queryable_attributes(mcat, "/demozone/other")
        assert set(names) == {"RA", "SURVEY"}

    def test_structural_attrs_included(self, mcat):
        mcat.define_structural("/demozone/survey", "epoch")
        assert "epoch" in queryable_attributes(mcat, "/demozone/survey")

    def test_system_names_appended(self, mcat):
        names = queryable_attributes(mcat, "/demozone", include_system=True)
        assert "SYS:owner" in names
