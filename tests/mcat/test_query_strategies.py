"""Tests for the index-driven query strategy (answers must be identical
to the scan strategy in every case; the plan differs only in cost)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mcat import Condition, DisplayOnly, Mcat, search
from repro.mcat.schema import drop_attribute_indexes
from repro.errors import QueryError

OWNER = "b@s"


@pytest.fixture
def mcat():
    m = Mcat()
    m.create_collection("/demozone/c", OWNER, now=0.0)
    m.create_collection("/demozone/c/sub", OWNER, now=0.0)
    m.create_collection("/demozone/other", OWNER, now=0.0)
    data = [
        ("/demozone/c/a", {"species": "ibis", "mag": "5.0"}),
        ("/demozone/c/b", {"species": "heron", "mag": "9.5"}),
        ("/demozone/c/sub/d", {"species": "ibis", "mag": "12.0"}),
        ("/demozone/other/e", {"species": "ibis"}),
    ]
    for path, attrs in data:
        oid = m.create_object(path, "data", OWNER, now=0.0)
        for attr, value in attrs.items():
            m.add_metadata("object", oid, attr, value, by=OWNER, now=0.0)
    return m


def both(mcat, scope, conditions, **kw):
    a = search(mcat, scope, conditions, strategy="scan", **kw)
    b = search(mcat, scope, conditions, strategy="index", **kw)
    assert a.columns == b.columns
    assert sorted(a.rows) == sorted(b.rows)
    return a


class TestEquivalence:
    def test_equality(self, mcat):
        r = both(mcat, "/demozone/c", [Condition("species", "=", "ibis")])
        assert len(r) == 2

    def test_scope_respected_by_index_plan(self, mcat):
        r = both(mcat, "/demozone/c/sub",
                 [Condition("species", "=", "ibis")])
        assert [row[0] for row in r.rows] == ["/demozone/c/sub/d"]

    def test_range(self, mcat):
        r = both(mcat, "/demozone/c", [Condition("mag", ">", "6")])
        assert len(r) == 2

    def test_like(self, mcat):
        r = both(mcat, "/demozone", [Condition("species", "like", "i%")])
        assert len(r) == 3

    def test_conjunction_intersects(self, mcat):
        r = both(mcat, "/demozone/c",
                 [Condition("species", "=", "ibis"),
                  Condition("mag", "<", "6")])
        assert [row[0] for row in r.rows] == ["/demozone/c/a"]

    def test_empty_result(self, mcat):
        r = both(mcat, "/demozone/c", [Condition("species", "=", "dodo")])
        assert len(r) == 0

    def test_display_columns_identical(self, mcat):
        r = both(mcat, "/demozone/c",
                 [Condition("species", "=", "ibis"), DisplayOnly("mag")])
        assert r.columns == ["path", "species", "mag"]


class TestFallbacks:
    def test_no_conditions_falls_back_to_scan(self, mcat):
        r = search(mcat, "/demozone/c", [DisplayOnly("species")],
                   strategy="index")
        assert len(r) == 3      # every object in scope (incl. sub/) listed

    def test_system_attrs_fall_back(self, mcat):
        r = search(mcat, "/demozone/c",
                   [Condition("SYS:owner", "=", OWNER)],
                   include_system=True, strategy="index")
        assert len(r) == 3

    def test_dropped_indexes_fall_back(self, mcat):
        drop_attribute_indexes(mcat.db)
        r = search(mcat, "/demozone/c", [Condition("species", "=", "ibis")],
                   strategy="index")
        assert len(r) == 2

    def test_unknown_strategy_rejected(self, mcat):
        with pytest.raises(QueryError):
            search(mcat, "/demozone/c", [], strategy="quantum")


class TestCost:
    def test_index_plan_touches_fewer_rows(self):
        m = Mcat()
        m.create_collection("/demozone/big", OWNER, now=0.0)
        for i in range(300):
            oid = m.create_object(f"/demozone/big/o{i}", "data", OWNER,
                                  now=0.0)
            m.add_metadata("object", oid, "common", str(i), by=OWNER, now=0.0)
            if i < 3:
                m.add_metadata("object", oid, "rare", "yes", by=OWNER,
                               now=0.0)

        def rows_touched(strategy):
            before = sum(m.db.table(t).rows_scanned for t in m.db.tables())
            search(m, "/demozone/big", [Condition("rare", "=", "yes")],
                   strategy=strategy)
            return sum(m.db.table(t).rows_scanned
                       for t in m.db.tables()) - before

        scan_cost = rows_touched("scan")
        index_cost = rows_touched("index")
        assert index_cost < scan_cost / 5


conditions_strategy = st.lists(
    st.tuples(st.sampled_from(["species", "mag", "ghost"]),
              st.sampled_from(["=", "<>", ">", "<", "like"]),
              st.sampled_from(["ibis", "heron", "5.0", "9", "i%", "x"])),
    min_size=1, max_size=3)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.function_scoped_fixture])
    @given(conditions_strategy)
    def test_random_queries_agree(self, mcat, conds):
        conditions = [Condition(a, op, v) for a, op, v in conds]
        both(mcat, "/demozone", conditions)
