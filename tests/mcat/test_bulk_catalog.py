"""Bulk catalog write APIs and the path->rid resolution cache.

The bulk data plane's catalog half: ``create_objects`` /
``add_replicas`` / ``add_metadata_bulk`` register N rows under a single
``_charged()`` block (one ``QUERY_OVERHEAD_S``, one ``mcat.ops``
increment), and collection path resolution is cached with invalidation
on remove/rename.
"""

import pytest

from repro.errors import (
    AlreadyExists,
    MetadataError,
    NoSuchCollection,
    SrbError,
)
from repro.mcat import Mcat

OWNER = "sekar@sdsc"
COLL = "/demozone/home"


@pytest.fixture
def mcat():
    m = Mcat(zone="demozone")
    m.create_collection(COLL, OWNER, now=0.0)
    return m


def ops(m):
    return m.obs.metrics.get("mcat.ops")


class TestCreateObjects:
    def test_rows_match_individual_creates(self, mcat):
        specs = [{"path": f"{COLL}/f{i}", "kind": "data", "size": i}
                 for i in range(5)]
        oids = mcat.create_objects(specs, OWNER, now=1.0)
        assert len(oids) == 5
        for i, oid in enumerate(oids):
            row = mcat.get_object(f"{COLL}/f{i}")
            assert row["oid"] == oid and row["size"] == i
            assert row["owner"] == OWNER

    def test_one_charged_block(self, mcat):
        before = ops(mcat)
        mcat.create_objects([{"path": f"{COLL}/f{i}", "kind": "data"}
                             for i in range(20)], OWNER, now=1.0)
        assert ops(mcat) - before == 1

    def test_one_block_cheaper_clock_than_n(self):
        from repro.util.clock import SimClock
        m1 = Mcat(zone="z", clock=SimClock())
        m1.create_collection("/z/c", OWNER, now=0.0)
        t0 = m1.clock.now
        m1.create_objects([{"path": f"/z/c/f{i}", "kind": "data"}
                           for i in range(50)], OWNER, now=0.0)
        bulk_cost = m1.clock.now - t0

        m2 = Mcat(zone="z", clock=SimClock())
        m2.create_collection("/z/c", OWNER, now=0.0)
        t0 = m2.clock.now
        for i in range(50):
            m2.create_object(f"/z/c/f{i}", "data", OWNER, now=0.0)
        loop_cost = m2.clock.now - t0
        assert bulk_cost < loop_cost

    def test_per_item_error_isolation(self, mcat):
        mcat.create_object(f"{COLL}/taken", "data", OWNER, now=0.0)
        out = mcat.create_objects([
            {"path": f"{COLL}/a", "kind": "data"},
            {"path": f"{COLL}/taken", "kind": "data"},     # duplicate
            {"path": "/demozone/nope/b", "kind": "data"},  # no collection
            {"path": f"{COLL}/c", "kind": "data"},
        ], OWNER, now=0.0)
        assert isinstance(out[0], int)
        assert isinstance(out[1], AlreadyExists)
        assert isinstance(out[2], NoSuchCollection)
        assert isinstance(out[3], int)
        assert mcat.object_exists(f"{COLL}/a")
        assert mcat.object_exists(f"{COLL}/c")

    def test_intra_batch_duplicate_caught(self, mcat):
        out = mcat.create_objects([
            {"path": f"{COLL}/dup", "kind": "data"},
            {"path": f"{COLL}/dup", "kind": "data"},
        ], OWNER, now=0.0)
        assert isinstance(out[0], int)
        assert isinstance(out[1], AlreadyExists)


class TestAddReplicas:
    def test_numbering_matches_sequential(self, mcat):
        oid = mcat.create_object(f"{COLL}/f", "data", OWNER, now=0.0)
        nums = mcat.add_replicas([
            {"oid": oid, "resource": "r1", "physical_path": "/p1", "size": 1},
            {"oid": oid, "resource": "r2", "physical_path": "/p2", "size": 1},
        ], now=0.0)
        assert nums == [1, 2]
        assert [r["resource"] for r in mcat.replicas(oid)] == ["r1", "r2"]

    def test_one_charged_block(self, mcat):
        oid = mcat.create_object(f"{COLL}/f", "data", OWNER, now=0.0)
        before = ops(mcat)
        mcat.add_replicas([{"oid": oid, "resource": f"r{i}",
                            "physical_path": f"/p{i}", "size": 1}
                           for i in range(10)], now=0.0)
        assert ops(mcat) - before == 1


class TestAddMetadataBulk:
    def test_triples_land(self, mcat):
        oid = mcat.create_object(f"{COLL}/f", "data", OWNER, now=0.0)
        mids = mcat.add_metadata_bulk(
            [{"target_kind": "object", "target_id": oid,
              "attr": f"a{i}", "value": str(i)} for i in range(4)],
            by=OWNER, now=0.0)
        assert len(mids) == 4
        md = mcat.get_metadata("object", oid)
        assert {m["attr"] for m in md} == {"a0", "a1", "a2", "a3"}

    def test_one_charged_block(self, mcat):
        oid = mcat.create_object(f"{COLL}/f", "data", OWNER, now=0.0)
        before = ops(mcat)
        mcat.add_metadata_bulk(
            [{"target_kind": "object", "target_id": oid,
              "attr": f"a{i}", "value": "v"} for i in range(10)],
            by=OWNER, now=0.0)
        assert ops(mcat) - before == 1

    def test_validates_all_before_inserting_any(self, mcat):
        oid = mcat.create_object(f"{COLL}/f", "data", OWNER, now=0.0)
        with pytest.raises(MetadataError):
            mcat.add_metadata_bulk([
                {"target_kind": "object", "target_id": oid,
                 "attr": "good", "value": "v"},
                {"target_kind": "object", "target_id": oid,
                 "attr": "", "value": "v"},           # invalid attr
            ], by=OWNER, now=0.0)
        assert mcat.get_metadata("object", oid) == []

    def test_get_metadata_bulk_one_block(self, mcat):
        oids = [mcat.create_object(f"{COLL}/f{i}", "data", OWNER, now=0.0)
                for i in range(3)]
        for oid in oids:
            mcat.add_metadata("object", oid, "k", str(oid), by=OWNER, now=0.0)
        before = ops(mcat)
        rows = mcat.get_metadata_bulk([("object", oid) for oid in oids])
        assert ops(mcat) - before == 1
        assert [r[0]["value"] for r in rows] == [str(o) for o in oids]


class TestPathRidCache:
    def test_cache_hit_counted(self, mcat):
        mcat.get_collection(COLL)
        before = mcat.cid_cache_hits
        mcat.get_collection(COLL)
        assert mcat.cid_cache_hits > before

    def test_cache_reduces_rows_scanned(self):
        m = Mcat(zone="z")
        m.create_collection("/z/c", OWNER, now=0.0)
        m.get_collection("/z/c")                    # warm
        before = m._rows_scanned()
        m.get_collection("/z/c")
        warm = m._rows_scanned() - before
        m._coll_rid_cache.clear()
        before = m._rows_scanned()
        m.get_collection("/z/c")
        cold = m._rows_scanned() - before
        assert warm < cold

    def test_invalidated_on_remove(self, mcat):
        mcat.create_collection(f"{COLL}/tmp", OWNER, now=0.0)
        mcat.get_collection(f"{COLL}/tmp")          # warm the cache
        mcat.remove_collection(f"{COLL}/tmp")
        assert not mcat.collection_exists(f"{COLL}/tmp")
        with pytest.raises(NoSuchCollection):
            mcat.get_collection(f"{COLL}/tmp")

    def test_invalidated_on_rename(self, mcat):
        mcat.create_collection(f"{COLL}/old", OWNER, now=0.0)
        mcat.get_collection(f"{COLL}/old")          # warm the cache
        mcat.rename_subtree(f"{COLL}/old", f"{COLL}/new")
        assert mcat.collection_exists(f"{COLL}/new")
        assert not mcat.collection_exists(f"{COLL}/old")

    def test_recreate_after_remove_resolves_fresh(self, mcat):
        mcat.create_collection(f"{COLL}/tmp", OWNER, now=0.0)
        mcat.get_collection(f"{COLL}/tmp")
        mcat.remove_collection(f"{COLL}/tmp")
        mcat.create_collection(f"{COLL}/tmp", OWNER, now=5.0)
        row = mcat.get_collection(f"{COLL}/tmp")
        assert row["created_at"] == 5.0
