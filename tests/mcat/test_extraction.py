"""Unit tests for metadata extraction methods + Dublin Core schemas."""

import pytest

from repro.errors import ExtractionError, MetadataError
from repro.mcat.dublin_core import (
    DUBLIN_CORE_ELEMENTS,
    MetadataSchema,
    SchemaElement,
    SchemaRegistry,
    dublin_core_schema,
)
from repro.mcat.extraction import ExtractionRegistry


class TestDublinCore:
    def test_fifteen_elements(self):
        assert len(DUBLIN_CORE_ELEMENTS) == 15
        assert "Title" in DUBLIN_CORE_ELEMENTS
        assert "Rights" in DUBLIN_CORE_ELEMENTS

    def test_schema_has_groupings(self):
        dc = dublin_core_schema()
        assert "Title" in dc.groups["content"]
        assert "Creator" in dc.groups["intellectual-property"]

    def test_element_lookup(self):
        dc = dublin_core_schema()
        assert dc.element("Date").name == "Date"
        with pytest.raises(MetadataError):
            dc.element("Nope")

    def test_vocabulary_check(self):
        el = SchemaElement("medium", vocabulary=("image", "text"))
        el.check("image")
        with pytest.raises(MetadataError):
            el.check("hologram")


class TestSchemaRegistry:
    def test_dublin_core_preregistered_globally(self):
        reg = SchemaRegistry()
        assert reg.exists("dublin-core")
        assert any(s.name == "dublin-core" for s in reg.schemas_for(None))

    def test_type_bound_schema(self):
        reg = SchemaRegistry()
        fits = MetadataSchema("fits-wcs", (SchemaElement("CRVAL1"),))
        reg.register(fits, data_types=["fits image"])
        names = [s.name for s in reg.schemas_for("fits image")]
        assert names == ["dublin-core", "fits-wcs"]
        assert [s.name for s in reg.schemas_for("html")] == ["dublin-core"]

    def test_duplicate_rejected(self):
        reg = SchemaRegistry()
        with pytest.raises(MetadataError):
            reg.register(dublin_core_schema())


@pytest.fixture
def reg():
    return ExtractionRegistry()


class TestBuiltinExtractors:
    def test_fits_header(self, reg):
        content = (b"SIMPLE  = T\n"
                   b"RA      = 10.68 / right ascension\n"
                   b"DEC     = 41.27\n"
                   b"END\n")
        triples = reg.extract("fits image", "fits header", content)
        got = {t.attr: t.value for t in triples}
        assert got["RA"] == "10.68"
        assert got["DEC"] == "41.27"

    def test_html_meta(self, reg):
        content = (b"<html><head><title>Avian Cultures</title>"
                   b'<meta name="author" content="sekar">'
                   b"</head></html>")
        got = {t.attr: t.value
               for t in reg.extract("html", "html meta", content)}
        assert got["Title"] == "Avian Cultures"
        assert got["author"] == "sekar"

    def test_xml_sidecar(self, reg):
        content = b"<record><species>ibis</species><region>nile</region></record>"
        got = {t.attr: t.value
               for t in reg.extract("xml metadata", "xml sidecar", content)}
        assert got == {"species": "ibis", "region": "nile"}

    def test_dicom_sidecar(self, reg):
        content = (b"(0010,0010) PatientName: DOE^JANE\n"
                   b"(0008,0060) Modality: MR\n")
        got = {t.attr: t.value
               for t in reg.extract("dicom image", "dicom header", content)}
        assert got["PatientName"] == "DOE^JANE"
        assert got["Modality"] == "MR"

    def test_properties(self, reg):
        got = {t.attr: t.value for t in reg.extract(
            "ascii text", "properties", b"site = sevilleta\nbands: 224\n")}
        assert got == {"site": "sevilleta", "bands": "224"}

    def test_sidecar_flag(self, reg):
        assert reg.get("dicom image", "dicom header").from_sidecar
        assert not reg.get("fits image", "fits header").from_sidecar

    def test_no_matches_is_empty_not_error(self, reg):
        assert reg.extract("fits image", "fits header", b"garbage") == []


class TestRegistration:
    def test_multiple_methods_per_type(self, reg):
        reg.register("alt fits", "fits image",
                     r"EXTRACT /(?P<v>\w+)/ -> 'word' = $v")
        names = [m.name for m in reg.methods_for("fits image")]
        assert names == ["fits header", "alt fits"]

    def test_duplicate_name_rejected(self, reg):
        with pytest.raises(ExtractionError):
            reg.register("fits header", "fits image",
                         r"EXTRACT /x/ -> 'a' = 'b'")

    def test_unknown_method(self, reg):
        with pytest.raises(ExtractionError):
            reg.get("fits image", "nope")

    def test_unknown_type_has_no_methods(self, reg):
        assert reg.methods_for("mystery") == []
        assert reg.methods_for(None) == []

    def test_user_method_choice(self, reg):
        """"One can associate more than one metadata extraction method for
        a data-type and the user is allowed to choose one" — choose the
        alternative and get its output, not the default's."""
        reg.register("first word", "ascii text",
                     r"EXTRACT /^(?P<w>\w+)/ -> 'first' = $w")
        triples = reg.extract("ascii text", "first word", b"hello world")
        assert {t.attr for t in triples} == {"first"}
