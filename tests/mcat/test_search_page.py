"""Cursor-paged catalog queries: ``search_page``,
``objects_in_collection_page`` and their sharded fan-out+merge variants."""

import pytest

from repro.mcat import Mcat, ShardedMcat
from repro.mcat.query import Condition, DisplayOnly, search, search_page
from repro.util.clock import SimClock

OWNER = "sekar@sdsc"
ZONE = "demozone"
SCOPE = f"/{ZONE}/proj"


def seed(m, projects=("alpha", "beta", "gamma"), objs=9):
    """The same dataset on any Mcat-shaped catalog."""
    m.create_collection(SCOPE, OWNER, now=0.0)
    for proj in projects:
        m.create_collection(f"{SCOPE}/{proj}", OWNER, now=0.0)
        for i in range(objs):
            oid = m.create_object(f"{SCOPE}/{proj}/f{i}", "data", OWNER,
                                  now=0.0, size=100 + i)
            m.add_metadata("object", oid, "proj", proj, by=OWNER, now=0.0)
            m.add_metadata("object", oid, "parity",
                           "even" if i % 2 == 0 else "odd",
                           by=OWNER, now=0.0)
    return m


@pytest.fixture(params=["plain", "sharded"])
def mcat(request):
    if request.param == "plain":
        return seed(Mcat(zone=ZONE, clock=SimClock()))
    return seed(ShardedMcat(zone=ZONE, clock=SimClock(), shards=4))


def drain_search(m, conditions, limit):
    rows, cursor, pages = [], None, 0
    while True:
        page = search_page(m, SCOPE, conditions, limit=limit, cursor=cursor)
        assert len(page.rows) <= limit
        rows.extend(page.rows)
        pages += 1
        cursor = page.next_cursor
        if cursor is None:
            return rows, pages


class TestSearchPage:
    def test_parity_with_search(self, mcat):
        conds = [Condition("parity", "=", "even"), DisplayOnly("proj")]
        full = search(mcat, SCOPE, conds)
        paged, _pages = drain_search(mcat, conds, limit=4)
        assert sorted(paged) == sorted(full.rows)

    def test_rows_path_ordered_no_dups(self, mcat):
        rows, _pages = drain_search(mcat, [DisplayOnly("proj")], limit=5)
        paths = [r[0] for r in rows]
        assert paths == sorted(paths)
        assert len(paths) == len(set(paths)) == 27

    def test_columns_match_search(self, mcat):
        conds = [Condition("proj", "=", "alpha")]
        assert (search_page(mcat, SCOPE, conds, limit=3).columns
                == search(mcat, SCOPE, conds).columns)

    def test_exact_fit_ends_cleanly(self, mcat):
        # 27 hits in pages of 9: page 3 must carry next_cursor None
        _rows, pages = drain_search(mcat, [DisplayOnly("proj")], limit=9)
        assert pages == 3

    def test_selective_filter_fills_pages(self, mcat):
        # 'even' matches 5 of every 9 objects: pages still fill to limit
        page = search_page(mcat, SCOPE, [Condition("parity", "=", "even")],
                           limit=10)
        assert len(page.rows) == 10
        assert page.next_cursor is not None


class TestObjectsPage:
    def test_parity_with_enumerator(self, mcat):
        full = [o["path"] for o in
                mcat.objects_in_collection(SCOPE, recursive=True)]
        rows, cursor = [], None
        while True:
            batch, cursor = mcat.objects_in_collection_page(
                SCOPE, cursor=cursor, limit=4)
            rows.extend(o["path"] for o in batch)
            if cursor is None:
                break
        assert rows == sorted(full)

    def test_non_recursive_skips_nested(self, mcat):
        batch, cursor = mcat.objects_in_collection_page(
            SCOPE, limit=100, recursive=False)
        assert batch == [] and cursor is None   # objects live one level down
        batch, cursor = mcat.objects_in_collection_page(
            f"{SCOPE}/alpha", limit=100, recursive=False)
        assert len(batch) == 9 and cursor is None


class TestPageCharging:
    def test_page_cost_o_page_not_o_subtree(self):
        m = Mcat(zone=ZONE, clock=SimClock())
        m.create_collection(SCOPE, OWNER, now=0.0)
        m.create_objects([{"path": f"{SCOPE}/f{i:05d}", "kind": "data"}
                          for i in range(3000)], OWNER, now=0.0)
        before = m.busy_s
        m.objects_in_collection_page(SCOPE, limit=10)
        page_cost = m.busy_s - before
        before = m.busy_s
        m.objects_in_collection(SCOPE, recursive=True)
        full_cost = m.busy_s - before
        assert page_cost < full_cost / 20

    def test_sharded_page_bounded_per_shard(self):
        m = seed(ShardedMcat(zone=ZONE, clock=SimClock(), shards=4),
                 objs=50)
        busy_before = m.busy_s
        page = search_page(m, SCOPE, [DisplayOnly("proj")], limit=10)
        busy_page = m.busy_s - busy_before
        assert len(page.rows) == 10
        busy_before = m.busy_s
        search(m, SCOPE, [DisplayOnly("proj")])
        busy_full = m.busy_s - busy_before
        # every shard serves O(page) per fetch vs the full fan-out scan
        assert busy_page < busy_full / 2
