"""Unit tests for MCAT collections, objects and replicas."""

import pytest

from repro.errors import (
    AlreadyExists,
    MetadataError,
    NoSuchCollection,
    NoSuchObject,
    NoSuchReplica,
    NotEmpty,
)
from repro.mcat import Mcat

OWNER = "sekar@sdsc"


@pytest.fixture
def mcat():
    m = Mcat(zone="demozone")
    m.create_collection("/demozone/home", OWNER, now=0.0)
    return m


class TestCollections:
    def test_root_and_zone_preexist(self, mcat):
        assert mcat.collection_exists("/")
        assert mcat.collection_exists("/demozone")

    def test_create_and_get(self, mcat):
        mcat.create_collection("/demozone/home/sekar", OWNER, now=1.0)
        row = mcat.get_collection("/demozone/home/sekar")
        assert row["owner"] == OWNER and row["parent"] == "/demozone/home"

    def test_parent_must_exist(self, mcat):
        with pytest.raises(NoSuchCollection):
            mcat.create_collection("/demozone/missing/sub", OWNER, now=0.0)

    def test_duplicate_rejected(self, mcat):
        with pytest.raises(AlreadyExists):
            mcat.create_collection("/demozone/home", OWNER, now=0.0)

    def test_collection_cannot_shadow_object(self, mcat):
        mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        with pytest.raises(AlreadyExists):
            mcat.create_collection("/demozone/home/x", OWNER, now=0.0)

    def test_child_collections_sorted(self, mcat):
        mcat.create_collection("/demozone/home/b", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        kids = mcat.child_collections("/demozone/home")
        assert [k["path"] for k in kids] == ["/demozone/home/a",
                                             "/demozone/home/b"]

    def test_subtree_collections(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/a/b", OWNER, now=0.0)
        subtree = mcat.subtree_collections("/demozone/home")
        assert [s["path"] for s in subtree] == [
            "/demozone/home", "/demozone/home/a", "/demozone/home/a/b"]

    def test_remove_empty(self, mcat):
        mcat.create_collection("/demozone/home/tmp", OWNER, now=0.0)
        mcat.remove_collection("/demozone/home/tmp")
        assert not mcat.collection_exists("/demozone/home/tmp")

    def test_remove_nonempty_rejected(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_object("/demozone/home/a/x", "data", OWNER, now=0.0)
        with pytest.raises(NotEmpty):
            mcat.remove_collection("/demozone/home/a")

    def test_remove_with_subcollections_rejected(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/a/b", OWNER, now=0.0)
        with pytest.raises(NotEmpty):
            mcat.remove_collection("/demozone/home/a")


class TestObjects:
    def test_create_get(self, mcat):
        oid = mcat.create_object("/demozone/home/x.fits", "data", OWNER,
                                 now=2.0, data_type="fits image", size=100)
        obj = mcat.get_object("/demozone/home/x.fits")
        assert obj["oid"] == oid
        assert obj["name"] == "x.fits"
        assert obj["coll"] == "/demozone/home"
        assert obj["version"] == 1

    def test_unknown_kind_rejected(self, mcat):
        with pytest.raises(MetadataError):
            mcat.create_object("/demozone/home/x", "hologram", OWNER, now=0.0)

    def test_collection_must_exist(self, mcat):
        with pytest.raises(NoSuchCollection):
            mcat.create_object("/demozone/nowhere/x", "data", OWNER, now=0.0)

    def test_path_collision_with_object(self, mcat):
        mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        with pytest.raises(AlreadyExists):
            mcat.create_object("/demozone/home/x", "url", OWNER, now=0.0)

    def test_path_collision_with_collection(self, mcat):
        with pytest.raises(AlreadyExists):
            mcat.create_object("/demozone/home", "data", OWNER, now=0.0)

    def test_find_returns_none(self, mcat):
        assert mcat.find_object("/demozone/home/ghost") is None

    def test_get_missing_raises(self, mcat):
        with pytest.raises(NoSuchObject):
            mcat.get_object("/demozone/home/ghost")

    def test_get_by_id(self, mcat):
        oid = mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        assert mcat.get_object_by_id(oid)["path"] == "/demozone/home/x"

    def test_move_object(self, mcat):
        oid = mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/sub", OWNER, now=0.0)
        mcat.move_object(oid, "/demozone/home/sub/y")
        obj = mcat.get_object_by_id(oid)
        assert obj["path"] == "/demozone/home/sub/y"
        assert obj["coll"] == "/demozone/home/sub"
        assert obj["name"] == "y"

    def test_move_to_taken_path_rejected(self, mcat):
        oid = mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        mcat.create_object("/demozone/home/y", "data", OWNER, now=0.0)
        with pytest.raises(AlreadyExists):
            mcat.move_object(oid, "/demozone/home/y")

    def test_objects_in_collection_nonrecursive(self, mcat):
        mcat.create_object("/demozone/home/a", "data", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/sub", OWNER, now=0.0)
        mcat.create_object("/demozone/home/sub/b", "data", OWNER, now=0.0)
        assert len(mcat.objects_in_collection("/demozone/home")) == 1

    def test_objects_in_collection_recursive(self, mcat):
        mcat.create_object("/demozone/home/a", "data", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/sub", OWNER, now=0.0)
        mcat.create_object("/demozone/home/sub/b", "data", OWNER, now=0.0)
        assert len(mcat.objects_in_collection("/demozone/home",
                                              recursive=True)) == 2

    def test_delete_cascades(self, mcat):
        oid = mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        mcat.add_replica(oid, "res", "/p", 10, now=0.0)
        mcat.add_metadata("object", oid, "k", "v", by=OWNER, now=0.0)
        mcat.add_annotation("object", oid, "comment", OWNER, "hi", now=0.0)
        mcat.grant("object", oid, "x@y", "read")
        mcat.delete_object(oid)
        assert mcat.find_object("/demozone/home/x") is None
        assert mcat.replicas(oid) == []
        assert mcat.get_metadata("object", oid) == []
        assert mcat.annotations_for("object", oid) == []
        assert mcat.grants_for("object", oid) == []

    def test_count_objects(self, mcat):
        before = mcat.count_objects()
        mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)
        assert mcat.count_objects() == before + 1


class TestReplicas:
    @pytest.fixture
    def oid(self, mcat):
        return mcat.create_object("/demozone/home/x", "data", OWNER, now=0.0)

    def test_replica_numbers_sequential(self, mcat, oid):
        assert mcat.add_replica(oid, "r1", "/p1", 5, now=0.0) == 1
        assert mcat.add_replica(oid, "r2", "/p2", 5, now=0.0) == 2

    def test_numbers_not_reused_after_delete(self, mcat, oid):
        mcat.add_replica(oid, "r1", "/p1", 5, now=0.0)
        n2 = mcat.add_replica(oid, "r2", "/p2", 5, now=0.0)
        mcat.remove_replica(oid, n2)
        # next gets max+1 of remaining (1) + 1 = 2 again is acceptable
        n3 = mcat.add_replica(oid, "r3", "/p3", 5, now=0.0)
        assert n3 == 2

    def test_get_replica(self, mcat, oid):
        mcat.add_replica(oid, "r1", "/p1", 5, now=0.0)
        rep = mcat.get_replica(oid, 1)
        assert rep["resource"] == "r1"

    def test_missing_replica(self, mcat, oid):
        with pytest.raises(NoSuchReplica):
            mcat.get_replica(oid, 9)
        with pytest.raises(NoSuchReplica):
            mcat.remove_replica(oid, 9)

    def test_mark_siblings_dirty(self, mcat, oid):
        mcat.add_replica(oid, "r1", "/p1", 5, now=0.0)
        mcat.add_replica(oid, "r2", "/p2", 5, now=0.0)
        mcat.mark_siblings_dirty(oid, 2)
        reps = {r["replica_num"]: r["is_dirty"] for r in mcat.replicas(oid)}
        assert reps == {1: True, 2: False}

    def test_update_replica(self, mcat, oid):
        mcat.add_replica(oid, "r1", "/p1", 5, now=0.0)
        mcat.update_replica(oid, 1, size=99)
        assert mcat.get_replica(oid, 1)["size"] == 99

    def test_replicas_on_resource(self, mcat, oid):
        mcat.add_replica(oid, "r1", "/p1", 5, now=0.0)
        oid2 = mcat.create_object("/demozone/home/y", "data", OWNER, now=0.0)
        mcat.add_replica(oid2, "r1", "/p2", 5, now=0.0)
        assert len(mcat.replicas_on_resource("r1")) == 2

    def test_container_members_ordered_by_offset(self, mcat, oid):
        coid = mcat.create_object("/demozone/home/c", "container", OWNER,
                                  now=0.0)
        m2 = mcat.create_object("/demozone/home/m2", "data", OWNER, now=0.0)
        mcat.add_replica(m2, "r1", "/cont", 10, now=0.0,
                         container_oid=coid, offset=100)
        mcat.add_replica(oid, "r1", "/cont", 10, now=0.0,
                         container_oid=coid, offset=0)
        members = mcat.container_members(coid)
        assert [m["offset"] for m in members] == [0, 100]


class TestRenameSubtree:
    def test_collection_and_object_paths_rewritten(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/a/b", OWNER, now=0.0)
        mcat.create_object("/demozone/home/a/b/x", "data", OWNER, now=0.0)
        count = mcat.rename_subtree("/demozone/home/a", "/demozone/home/z")
        assert count == 3
        assert mcat.collection_exists("/demozone/home/z/b")
        obj = mcat.get_object("/demozone/home/z/b/x")
        assert obj["coll"] == "/demozone/home/z/b"
        assert not mcat.collection_exists("/demozone/home/a")

    def test_parent_pointers_updated(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/dst", OWNER, now=0.0)
        mcat.rename_subtree("/demozone/home/a", "/demozone/home/dst/a")
        row = mcat.get_collection("/demozone/home/dst/a")
        assert row["parent"] == "/demozone/home/dst"

    def test_sibling_with_common_prefix_untouched(self, mcat):
        mcat.create_collection("/demozone/home/a", OWNER, now=0.0)
        mcat.create_collection("/demozone/home/ab", OWNER, now=0.0)
        mcat.rename_subtree("/demozone/home/a", "/demozone/home/z")
        assert mcat.collection_exists("/demozone/home/ab")
