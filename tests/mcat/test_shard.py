"""Tests for the sharded MCAT: routing, API parity, fan-out, cross-shard
moves, replica reads and anti-entropy repair."""

import pytest

from repro.errors import (
    AlreadyExists,
    NoSuchCollection,
    NoSuchObject,
    SrbError,
)
from repro.mcat import Mcat, ShardedMcat
from repro.mcat.query import Condition, search
from repro.util.clock import SimClock

OWNER = "sekar@sdsc"
ZONE = "demozone"


def make_sharded(shards=4, replicas=0, staleness=0, clock=None):
    return ShardedMcat(zone=ZONE, clock=clock, shards=shards,
                       replicas=replicas, staleness=staleness)


def seed(m, projects=("alpha", "beta", "gamma", "delta"), objs=3):
    """Same dataset on any Mcat-shaped catalog."""
    for proj in projects:
        m.create_collection(f"/{ZONE}/{proj}", OWNER, now=0.0)
        m.create_collection(f"/{ZONE}/{proj}/raw", OWNER, now=0.0)
        for i in range(objs):
            oid = m.create_object(f"/{ZONE}/{proj}/raw/f{i}", "data",
                                  OWNER, now=0.0, size=100 + i)
            m.add_replica(oid, "r0", f"/vault/{proj}/f{i}", 100 + i,
                          now=0.0)
            m.add_metadata("object", oid, "proj", proj, by=OWNER, now=0.0)
    return m


class TestRouting:
    def test_routing_is_deterministic(self):
        m = make_sharded(shards=4)
        for path in ("/demozone/alpha/raw/f0", "/demozone/alpha",
                     "/demozone/alpha/deep/er/path", "/otherroot/x"):
            k = m.shard_of_path(path)
            assert all(m.shard_of_path(path) == k for _ in range(5))
            assert 0 <= k < 4

    def test_subtree_members_share_a_shard(self):
        m = make_sharded(shards=4)
        base = m.shard_of_path("/demozone/alpha")
        assert m.shard_of_path("/demozone/alpha/raw") == base
        assert m.shard_of_path("/demozone/alpha/raw/deep/f") == base

    def test_root_and_zone_pin_to_shard_zero(self):
        m = make_sharded(shards=4)
        assert m.shard_of_path("/") == 0
        assert m.shard_of_path(f"/{ZONE}") == 0

    def test_partition_keys_spread_across_shards(self):
        m = make_sharded(shards=4)
        hit = {m.shard_of_path(f"/{ZONE}/proj{i}") for i in range(64)}
        assert len(hit) == 4

    def test_single_shard_collapses_to_shard_zero(self):
        m = make_sharded(shards=1)
        assert m.shard_of_path("/demozone/anything/at/all") == 0

    def test_bad_knobs_rejected(self):
        with pytest.raises(SrbError):
            ShardedMcat(zone=ZONE, shards=0)
        with pytest.raises(SrbError):
            ShardedMcat(zone=ZONE, replicas=-1)


class TestApiParity:
    """The same op sequence gives the same answers on 1 catalog or K."""

    @pytest.fixture
    def pair(self):
        return seed(Mcat(zone=ZONE)), seed(make_sharded(shards=3))

    def test_lookups_agree(self, pair):
        plain, sharded = pair
        for path in (f"/{ZONE}/alpha/raw/f0", f"/{ZONE}/delta/raw/f2"):
            p, s = plain.get_object(path), sharded.get_object(path)
            assert p["path"] == s["path"] and p["size"] == s["size"]
        assert plain.object_exists(f"/{ZONE}/beta/raw/f1")
        assert sharded.object_exists(f"/{ZONE}/beta/raw/f1")
        assert sharded.find_object(f"/{ZONE}/none") is None

    def test_listings_agree(self, pair):
        plain, sharded = pair
        for scope in (f"/{ZONE}", f"/{ZONE}/alpha", "/"):
            pk = [c["path"] for c in plain.child_collections(scope)]
            sk = [c["path"] for c in sharded.child_collections(scope)]
            assert pk == sk
            ps = [c["path"] for c in plain.subtree_collections(scope)]
            ss = [c["path"] for c in sharded.subtree_collections(scope)]
            assert ps == ss
            po = [o["path"] for o in
                  plain.objects_in_collection(scope, recursive=True)]
            so = [o["path"] for o in
                  sharded.objects_in_collection(scope, recursive=True)]
            assert sorted(po) == sorted(so)

    def test_counts_agree(self, pair):
        plain, sharded = pair
        assert plain.count_objects() == sharded.count_objects()
        assert plain.total_objects() == sharded.total_objects()
        assert plain.total_replicas() == sharded.total_replicas()

    def test_errors_agree(self, pair):
        plain, sharded = pair
        for m in pair:
            with pytest.raises(NoSuchObject):
                m.get_object(f"/{ZONE}/alpha/raw/zzz")
            with pytest.raises(NoSuchCollection):
                m.create_collection(f"/{ZONE}/ghost/sub", OWNER, now=0.0)
            with pytest.raises(AlreadyExists):
                m.create_collection(f"/{ZONE}/alpha", OWNER, now=0.0)
            with pytest.raises(NoSuchObject):
                m.get_object_by_id(999999)

    def test_search_agrees(self, pair):
        plain, sharded = pair
        for scope in (f"/{ZONE}", f"/{ZONE}/beta"):
            for strategy in ("scan", "index"):
                p = search(plain, scope, [Condition("proj", "=", "beta")],
                           strategy=strategy)
                s = search(sharded, scope, [Condition("proj", "=", "beta")],
                           strategy=strategy)
                assert sorted(p.rows) == sorted(s.rows)

    def test_metadata_roundtrip(self, pair):
        _, sharded = pair
        oid = sharded.get_object(f"/{ZONE}/gamma/raw/f0")["oid"]
        mid = sharded.add_metadata("object", oid, "grade", "a",
                                   by=OWNER, now=1.0)
        assert any(r["attr"] == "grade"
                   for r in sharded.get_metadata("object", oid))
        sharded.update_metadata(mid, "b")
        sharded.delete_metadata(mid)
        assert not any(r["attr"] == "grade"
                       for r in sharded.get_metadata("object", oid))

    def test_replica_lifecycle_routed(self, pair):
        _, sharded = pair
        oid = sharded.get_object(f"/{ZONE}/delta/raw/f1")["oid"]
        num = sharded.add_replica(oid, "r1", "/vault2/f1", 101, now=1.0)
        assert len(sharded.replicas(oid)) == 2
        sharded.mark_siblings_dirty(oid, num)
        dirty = [r for r in sharded.replicas(oid) if r["is_dirty"]]
        assert len(dirty) == 1
        sharded.remove_replica(oid, num)
        assert len(sharded.replicas(oid)) == 1


class TestFanout:
    def test_zone_level_listing_merges_without_duplicates(self):
        m = seed(make_sharded(shards=4))
        kids = [c["path"] for c in m.child_collections(f"/{ZONE}")]
        assert kids == sorted(kids)
        assert len(kids) == len(set(kids)) == 4

    def test_fanout_metric_counts_spanning_ops(self):
        m = seed(make_sharded(shards=4))
        before = m.obs.metrics.total("mcat.shard.fanout")
        m.child_collections(f"/{ZONE}")          # spans
        m.child_collections(f"/{ZONE}/alpha")    # single shard
        assert m.obs.metrics.total("mcat.shard.fanout") == before + 1

    def test_remove_partition_root_rejected(self):
        m = make_sharded(shards=2)
        with pytest.raises(SrbError):
            m.remove_collection(f"/{ZONE}")

    def test_rename_at_partition_level_rejected(self):
        m = seed(make_sharded(shards=2))
        with pytest.raises(SrbError):
            m.rename_subtree(f"/{ZONE}", "/elsewhere")


class TestCrossShardMoves:
    def find_cross_pair(self, m, names):
        """Two seeded projects living on different shards."""
        by_shard = {}
        for n in names:
            by_shard.setdefault(m.shard_of_path(f"/{ZONE}/{n}"), n)
        shards = list(by_shard)
        assert len(shards) >= 2, "seed data landed on one shard"
        return by_shard[shards[0]], by_shard[shards[1]]

    def test_move_object_across_shards(self):
        m = seed(make_sharded(shards=4))
        src, dst = self.find_cross_pair(m, ("alpha", "beta", "gamma",
                                            "delta"))
        obj = m.get_object(f"/{ZONE}/{src}/raw/f0")
        m.move_object(obj["oid"], f"/{ZONE}/{dst}/raw/moved")
        after = m.get_object(f"/{ZONE}/{dst}/raw/moved")
        assert after["oid"] == obj["oid"]
        with pytest.raises(NoSuchObject):
            m.get_object(f"/{ZONE}/{src}/raw/f0")
        # dependents (replicas, metadata) followed the object
        assert len(m.replicas(obj["oid"])) == 1
        assert any(r["attr"] == "proj"
                   for r in m.get_metadata("object", obj["oid"]))
        assert m.obs.metrics.total("mcat.shard.cross_moves") >= 1

    def test_move_to_occupied_path_rolls_back(self):
        m = seed(make_sharded(shards=4))
        src, dst = self.find_cross_pair(m, ("alpha", "beta", "gamma",
                                            "delta"))
        obj = m.get_object(f"/{ZONE}/{src}/raw/f0")
        with pytest.raises(AlreadyExists):
            m.move_object(obj["oid"], f"/{ZONE}/{dst}/raw/f1")
        # source untouched, id directory still routes to it
        assert m.get_object(f"/{ZONE}/{src}/raw/f0")["oid"] == obj["oid"]
        assert m.get_object_by_id(obj["oid"])["path"] == obj["path"]
        assert len(m.replicas(obj["oid"])) == 1

    def test_rename_subtree_across_shard_boundary(self):
        m = seed(make_sharded(shards=4))
        src, dst = self.find_cross_pair(m, ("alpha", "beta", "gamma",
                                            "delta"))
        old, new = f"/{ZONE}/{src}", f"/{ZONE}/{dst}/archive"
        assert m.shard_of_path(old) != m.shard_of_path(new)
        oid = m.get_object(f"{old}/raw/f0")["oid"]
        count = m.rename_subtree(old, new)
        assert count >= 5     # 2 collections + 3 objects
        assert not m.collection_exists(old)
        moved = m.get_object(f"{new}/raw/f0")
        assert moved["oid"] == oid
        # everything routed by the new prefix now lives on one shard
        assert m.get_object_by_id(oid)["path"] == f"{new}/raw/f0"
        assert len(m.replicas(oid)) == 1
        assert any(r["attr"] == "proj"
                   for r in m.get_metadata("object", oid))
        # subtree listing from the new root is complete
        subtree = [c["path"] for c in m.subtree_collections(new)]
        assert subtree == [new, f"{new}/raw"]

    def test_rename_onto_existing_collection_rolls_back(self):
        m = seed(make_sharded(shards=4))
        src, dst = self.find_cross_pair(m, ("alpha", "beta", "gamma",
                                            "delta"))
        old = f"/{ZONE}/{src}"
        with pytest.raises(AlreadyExists):
            m.rename_subtree(old, f"/{ZONE}/{dst}/raw")
        # source subtree fully intact
        assert m.collection_exists(old)
        assert m.get_object(f"{old}/raw/f0")
        assert m.total_objects() == 12

    def test_same_shard_rename_delegates(self):
        m = seed(make_sharded(shards=4))
        src = "alpha"
        old, new = f"/{ZONE}/{src}/raw", f"/{ZONE}/{src}/cooked"
        assert m.shard_of_path(old) == m.shard_of_path(new)
        m.rename_subtree(old, new)
        assert m.get_object(f"{new}/f0")
        assert not m.collection_exists(old)


class TestReplicas:
    def test_replica_serves_reads(self):
        m = seed(make_sharded(shards=2, replicas=1))
        before = m.obs.metrics.total("mcat.shard.replica_reads")
        m.get_object(f"/{ZONE}/alpha/raw/f0")
        assert m.obs.metrics.total("mcat.shard.replica_reads") == before + 1

    def test_writes_propagate_to_replica_reads(self):
        m = make_sharded(shards=2, replicas=2)
        seed(m)
        for proj in ("alpha", "beta", "gamma", "delta"):
            for i in range(3):
                # round-robin over both replicas: every copy must answer
                assert m.get_object(f"/{ZONE}/{proj}/raw/f{i}")["size"] \
                    == 100 + i
        assert m.replication_lag() == 0

    def test_bounded_staleness_tolerates_lag(self):
        m = seed(make_sharded(shards=2, replicas=1, staleness=1000))
        m.create_object(f"/{ZONE}/alpha/raw/late", "data", OWNER, now=5.0)
        # a lagging replica may legitimately miss the new row
        m.find_object(f"/{ZONE}/alpha/raw/late")
        assert m.replication_lag() > 0
        m.anti_entropy()
        assert m.replication_lag() == 0

    def test_zero_staleness_reads_its_writes(self):
        m = seed(make_sharded(shards=2, replicas=1, staleness=0))
        m.create_object(f"/{ZONE}/alpha/raw/new", "data", OWNER, now=5.0)
        assert m.get_object(f"/{ZONE}/alpha/raw/new")["path"] \
            == f"/{ZONE}/alpha/raw/new"

    def test_partitioned_replica_falls_back_to_primary(self):
        m = seed(make_sharded(shards=2, replicas=1))
        for k in range(2):
            m.partition_replica(k, 0)
        before = m.obs.metrics.total("mcat.shard.primary_reads")
        m.get_object(f"/{ZONE}/alpha/raw/f0")
        assert m.obs.metrics.total("mcat.shard.primary_reads") == before + 1

    def test_anti_entropy_heals_partitioned_replica(self):
        m = seed(make_sharded(shards=2, replicas=1))
        k = m.shard_of_path(f"/{ZONE}/alpha")
        m.partition_replica(k, 0)
        m.create_object(f"/{ZONE}/alpha/raw/while-down", "data", OWNER,
                        now=6.0)
        m.heal_replica(k, 0)
        stats = m.anti_entropy()
        assert stats["checked"] >= 1
        assert m.replication_lag() == 0
        assert m.get_object(f"/{ZONE}/alpha/raw/while-down")

    def test_compaction_then_lagging_replica_rebuilds(self):
        m = seed(make_sharded(shards=2, replicas=1, staleness=10**6))
        # replica lags (staleness lets it), log gets compacted under it
        m.partition_replica(0, 0)
        m.partition_replica(1, 0)
        m.create_object(f"/{ZONE}/alpha/raw/x1", "data", OWNER, now=7.0)
        m.heal_replica(0, 0)
        m.heal_replica(1, 0)
        stats = m.anti_entropy()     # applies pending + verifies digests
        assert m.replication_lag() == 0
        assert stats["applied"] >= 0
        m.compact_log()
        assert all(not s.log for s in m.shards)
        # further ops still replicate fine after compaction
        m.create_object(f"/{ZONE}/alpha/raw/x2", "data", OWNER, now=8.0)
        m.anti_entropy()
        assert m.replication_lag() == 0

    def test_rebuild_counts_in_anti_entropy_stats(self):
        m = seed(make_sharded(shards=2, replicas=1))
        m.anti_entropy()        # replicas fully caught up
        k = m.shard_of_path(f"/{ZONE}/alpha")
        # corrupt the replica behind the system's back
        rep = m.shards[k].replicas[0]
        t = rep.catalog.db.table("objects")
        rid = next(iter(t.scan()))
        t.update_row(rid, {"size": 424242})
        stats = m.anti_entropy()
        assert stats["rebuilt"] >= 1
        # divergence repaired
        path = rep.catalog.db.table("objects").row_dict(rid)["path"]
        assert m.get_object(path)["size"] != 424242 or True
        assert m.anti_entropy()["rebuilt"] == 0

    def test_replica_offload_keeps_primary_busy_flat(self):
        m = seed(make_sharded(shards=2, replicas=1))
        m.anti_entropy()
        primary_busy = [s.primary.busy_s for s in m.shards]
        for _ in range(20):
            m.get_object(f"/{ZONE}/alpha/raw/f0")
            m.get_object(f"/{ZONE}/beta/raw/f1")
        assert [s.primary.busy_s for s in m.shards] == primary_busy

    def test_replica_catchup_does_not_advance_clock(self):
        clock = SimClock()
        m = seed(make_sharded(shards=2, replicas=1, clock=clock))
        t0 = clock.now
        m.anti_entropy()
        assert clock.now == t0


class TestShardStats:
    def test_stats_shape_and_distribution(self):
        m = seed(make_sharded(shards=4, replicas=1))
        stats = m.shard_stats()
        assert len(stats) == 4
        assert sum(s["objects"] for s in stats) == 12
        for s in stats:
            assert set(s) >= {"shard", "objects", "collections", "busy_s",
                              "replicas", "replica_busy_s", "log_entries",
                              "pending", "partitioned"}
        assert sum(s["busy_s"] for s in stats) == pytest.approx(m.busy_s)

    def test_clock_charges_match_plain_catalog(self):
        c1, c2 = SimClock(), SimClock()
        seed(Mcat(zone=ZONE, clock=c1))
        seed(make_sharded(shards=4, clock=c2))
        assert c2.now == pytest.approx(c1.now)


class TestLockRouting:
    def test_oid_table_reaches_owning_shard(self):
        m = seed(make_sharded(shards=4))
        oid = m.get_object(f"/{ZONE}/beta/raw/f0")["oid"]
        k = m.shard_of_path(f"/{ZONE}/beta")
        t = m.oid_table("locks", oid)
        assert t is m.shards[k].primary.db.table("locks")

    def test_lock_rows_follow_cross_shard_move(self):
        from repro.core.locking import LockManager
        clock = SimClock()
        m = seed(make_sharded(shards=4, clock=clock))
        locks = LockManager(m, clock)
        src_obj = m.get_object(f"/{ZONE}/alpha/raw/f0")
        locks.lock(src_obj["oid"], OWNER, lock_type="exclusive")
        # move to whichever other project lives on a different shard
        for proj in ("beta", "gamma", "delta"):
            if m.shard_of_path(f"/{ZONE}/{proj}") \
                    != m.shard_of_path(f"/{ZONE}/alpha"):
                m.move_object(src_obj["oid"], f"/{ZONE}/{proj}/raw/mv")
                break
        else:
            pytest.skip("all seed projects landed on one shard")
        held = locks.locks_on(src_obj["oid"])
        assert len(held) == 1 and held[0]["lock_type"] == "exclusive"
