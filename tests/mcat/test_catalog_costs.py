"""Regression tests for catalog scan-cost fixes.

Two hot paths used to pay O(catalog) where O(result) suffices:

* ``subtree_collections`` scanned the whole collections table per call;
  it now walks the ``parent`` index breadth-first, so the charge tracks
  the subtree, not the catalog.
* the index query plan fetched each candidate with its own charged
  ``get_object_by_id`` call (one QUERY_OVERHEAD per candidate); the
  batch ``get_objects_by_ids`` fetch charges the whole list as one
  catalog operation, which is what E4's plan-cost numbers rely on.
"""

import pytest

from repro.mcat import Mcat
from repro.mcat.query import Condition, search

OWNER = "sekar@sdsc"
ZONE = "demozone"


def build_wide_catalog(m, wide=200, small=3):
    """A tiny target subtree next to a very wide sibling subtree."""
    m.create_collection(f"/{ZONE}/small", OWNER, now=0.0)
    for i in range(small):
        m.create_collection(f"/{ZONE}/small/c{i}", OWNER, now=0.0)
    m.create_collection(f"/{ZONE}/wide", OWNER, now=0.0)
    for i in range(wide):
        m.create_collection(f"/{ZONE}/wide/c{i}", OWNER, now=0.0)
    return m


class TestSubtreeScanCost:
    def test_subtree_listing_charges_subtree_not_catalog(self):
        m = build_wide_catalog(Mcat(zone=ZONE))
        total = len(m.db.table("collections"))
        assert total > 200
        before = m._rows_scanned()
        rows = m.subtree_collections(f"/{ZONE}/small")
        touched = m._rows_scanned() - before
        assert len(rows) == 4
        # BFS over the parent index: a handful of index probes plus the
        # subtree's own rows — nowhere near the 200-row sibling subtree
        assert touched < 40, (
            f"subtree_collections touched {touched} rows for a 4-row "
            f"subtree in a {total}-collection catalog")

    def test_subtree_cost_independent_of_sibling_width(self):
        narrow = build_wide_catalog(Mcat(zone=ZONE), wide=10)
        wide = build_wide_catalog(Mcat(zone=ZONE), wide=400)

        def touched(m):
            before = m._rows_scanned()
            m.subtree_collections(f"/{ZONE}/small")
            return m._rows_scanned() - before

        assert touched(wide) == touched(narrow)

    def test_bfs_returns_deep_nesting_sorted(self):
        m = Mcat(zone=ZONE)
        m.create_collection(f"/{ZONE}/a", OWNER, now=0.0)
        m.create_collection(f"/{ZONE}/a/b", OWNER, now=0.0)
        m.create_collection(f"/{ZONE}/a/b/c", OWNER, now=0.0)
        m.create_collection(f"/{ZONE}/a/z", OWNER, now=0.0)
        got = [r["path"] for r in m.subtree_collections(f"/{ZONE}/a")]
        assert got == [f"/{ZONE}/a", f"/{ZONE}/a/b", f"/{ZONE}/a/b/c",
                       f"/{ZONE}/a/z"]


class TestIndexPlanBatchFetch:
    def build(self, matching):
        m = Mcat(zone=ZONE)
        m.create_collection(f"/{ZONE}/c", OWNER, now=0.0)
        for i in range(matching):
            oid = m.create_object(f"/{ZONE}/c/hit{i}", "data", OWNER,
                                  now=0.0)
            m.add_metadata("object", oid, "flag", "yes", by=OWNER, now=0.0)
        for i in range(50):
            oid = m.create_object(f"/{ZONE}/c/miss{i}", "data", OWNER,
                                  now=0.0)
            m.add_metadata("object", oid, "flag", "no", by=OWNER, now=0.0)
        return m

    def ops_for_search(self, m):
        before = m.obs.metrics.total("mcat.ops")
        r = search(m, f"/{ZONE}/c", [Condition("flag", "=", "yes")],
                   strategy="index")
        return m.obs.metrics.total("mcat.ops") - before, len(r)

    def test_candidate_fetch_is_one_charged_op(self):
        few_ops, few_n = self.ops_for_search(self.build(5))
        many_ops, many_n = self.ops_for_search(self.build(60))
        assert few_n == 5 and many_n == 60
        # the E4 plan cost: op count must not grow with the candidate
        # list (the batch fetch charges once, not once per id)
        assert many_ops == few_ops
        assert few_ops <= 3

    def test_batch_lookup_skips_unknown_ids(self):
        m = self.build(2)
        oids = [o["oid"] for o in m.objects_in_collection(f"/{ZONE}/c")]
        got = m.get_objects_by_ids(oids + [987654])
        assert len(got) == len(oids)

    def test_batch_lookup_single_charge(self):
        m = self.build(10)
        oids = [o["oid"] for o in m.objects_in_collection(f"/{ZONE}/c")]
        before = m.obs.metrics.total("mcat.ops")
        rows = m.get_objects_by_ids(oids)
        assert m.obs.metrics.total("mcat.ops") == before + 1
        assert [r["oid"] for r in rows] == oids

    def test_index_and_scan_plans_agree_after_batching(self):
        m = self.build(7)
        idx = search(m, f"/{ZONE}/c", [Condition("flag", "=", "yes")],
                     strategy="index")
        scan = search(m, f"/{ZONE}/c", [Condition("flag", "=", "yes")],
                      strategy="scan")
        assert sorted(idx.rows) == sorted(scan.rows)
