"""Property tests for subtree renames (the migration/move primitive)."""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.mcat import Mcat

OWNER = "u@d"

names = st.sampled_from(["a", "b", "c", "d"])
tree = st.lists(st.lists(names, min_size=1, max_size=3), min_size=1,
                max_size=6)


def build(paths_spec):
    """Build a catalog holding collections/objects from component lists."""
    mcat = Mcat(zone="z")
    collections = set()
    objects = {}
    for comps in paths_spec:
        # all but the last component are collections; last is an object
        coll = "/z"
        ok = True
        for c in comps[:-1]:
            coll = f"{coll}/{c}"
            if coll in objects:
                ok = False
                break
            if coll not in collections:
                mcat.create_collection(coll, OWNER, now=0.0)
                collections.add(coll)
        if not ok:
            continue
        opath = f"{coll}/{comps[-1]}"
        if opath in objects or opath in collections:
            continue
        oid = mcat.create_object(opath, "data", OWNER, now=0.0)
        objects[opath] = oid
    return mcat, collections, objects


class TestRenameProperties:
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tree)
    def test_rename_preserves_object_population(self, spec):
        mcat, collections, objects = build(spec)
        mcat.create_collection("/z/dst", OWNER, now=0.0)
        count_before = mcat.count_objects()
        mcat.rename_subtree("/z", "/z2")
        # every object still exists exactly once, under the new prefix
        assert mcat.count_objects() == count_before
        for opath, oid in objects.items():
            moved = "/z2" + opath[len("/z"):]
            assert mcat.get_object(moved)["oid"] == oid
            assert mcat.find_object(opath) is None

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tree)
    def test_rename_roundtrip_is_identity(self, spec):
        mcat, collections, objects = build(spec)
        before = sorted(
            (row["path"], row["oid"])
            for row in mcat.objects_in_collection("/z", recursive=True))
        mcat.rename_subtree("/z", "/tmp-zone")
        mcat.rename_subtree("/tmp-zone", "/z")
        after = sorted(
            (row["path"], row["oid"])
            for row in mcat.objects_in_collection("/z", recursive=True))
        assert before == after

    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(tree)
    def test_parent_pointers_consistent_after_rename(self, spec):
        mcat, collections, objects = build(spec)
        mcat.rename_subtree("/z", "/z9")
        from repro.util import paths as P
        for row in mcat.subtree_collections("/z9"):
            if row["path"] == "/z9":
                continue
            assert row["parent"] == P.dirname(row["path"])
            assert mcat.collection_exists(row["parent"])
