"""Channel-ticket hygiene: one-shot, short-lived, epoch-bound.

A direct data channel's descriptor (``ChannelTicket``) authorizes
exactly one transfer on exactly one path in exactly one topology
epoch.  These tests pin the hygiene properties the redirect design
leans on: a redeemed ticket cannot be replayed, a stale ticket dies on
the virtual clock, any topology change (``set_down``/``set_up``/
``partition``/``heal``) invalidates every outstanding ticket, forged
or cross-zone signatures are rejected — and every rejection shows up
in the ``srb.redirect.denied`` metric with its reason.
"""

import dataclasses

import pytest

from repro.auth.tickets import (
    DEFAULT_CHANNEL_LIFETIME_S,
    TicketAuthority,
)
from repro.core import Federation
from repro.errors import InvalidTicket
from repro.util.clock import SimClock


@pytest.fixture
def authority():
    return TicketAuthority("demozone", "key-1", SimClock())


def issue(authority, epoch=0, **kw):
    kw.setdefault("src", "hr1")
    kw.setdefault("dst", "hc")
    kw.setdefault("nbytes", 4096)
    kw.setdefault("path_key", "/srb/x")
    return authority.issue_channel(epoch=epoch, **kw)


class TestChannelTicketAuthority:
    def test_roundtrip(self, authority):
        t = issue(authority)
        authority.redeem_channel(t, epoch=0)

    def test_no_double_redeem(self, authority):
        t = issue(authority)
        authority.redeem_channel(t, epoch=0)
        with pytest.raises(InvalidTicket) as exc:
            authority.redeem_channel(t, epoch=0)
        assert exc.value.reason == "reused"

    def test_virtual_clock_expiry(self, authority):
        t = issue(authority)
        authority.clock.advance(DEFAULT_CHANNEL_LIFETIME_S + 1)
        with pytest.raises(InvalidTicket) as exc:
            authority.redeem_channel(t, epoch=0)
        assert exc.value.reason == "expired"

    def test_expiry_boundary_is_exclusive(self, authority):
        t = issue(authority, lifetime_s=10.0)
        authority.clock.advance(9.999)
        authority.redeem_channel(t, epoch=0)
        t2 = issue(authority, lifetime_s=10.0)
        authority.clock.advance(10.0)
        with pytest.raises(InvalidTicket):
            authority.redeem_channel(t2, epoch=0)

    def test_epoch_mismatch_rejected(self, authority):
        t = issue(authority, epoch=3)
        with pytest.raises(InvalidTicket) as exc:
            authority.redeem_channel(t, epoch=4)
        assert exc.value.reason == "epoch"

    def test_tampered_size_rejected(self, authority):
        t = issue(authority)
        forged = dataclasses.replace(t, nbytes=10**9)
        with pytest.raises(InvalidTicket) as exc:
            authority.redeem_channel(forged, epoch=0)
        assert exc.value.reason == "signature"

    def test_tampered_destination_rejected(self, authority):
        t = issue(authority)
        forged = dataclasses.replace(t, dst="evil-host")
        with pytest.raises(InvalidTicket):
            authority.redeem_channel(forged, epoch=0)

    def test_cross_zone_rejected(self, authority):
        other = TicketAuthority("otherzone", "key-1", authority.clock)
        t = issue(other)
        with pytest.raises(InvalidTicket) as exc:
            authority.redeem_channel(t, epoch=0)
        assert exc.value.reason == "zone"

    def test_each_ticket_redeems_independently(self, authority):
        a, b = issue(authority), issue(authority)
        authority.redeem_channel(a, epoch=0)
        authority.redeem_channel(b, epoch=0)   # b unaffected by a


def direct_fed():
    fed = Federation(zone="z", direct_io=True)
    for h in ("hs", "hr1", "hc"):
        fed.add_host(h)
    fed.add_server("s1", "hs", mcat=True)
    fed.add_fs_resource("r1", "hr1")
    fed.default_resource = "r1"
    fed.bootstrap_admin()
    return fed


def denied_by_reason(fed):
    series = fed.obs.metrics.series("srb.redirect.denied")
    out = {}
    for labels, count in series.items():
        reason = labels.split("reason=", 1)[1].rstrip("}")
        out[reason] = out.get(reason, 0) + count
    return out


class TestBrokerHygiene:
    """The federation's ChannelBroker enforces hygiene and meters it."""

    def test_double_redeem_denied_and_metered(self):
        fed = direct_fed()
        ch = fed.channels.open("hr1", "hc", 1024, "/srb/x")
        fed.channels.redeem(ch.ticket)
        with pytest.raises(InvalidTicket):
            fed.channels.redeem(ch.ticket)
        assert fed.channels.denied == 1
        assert denied_by_reason(fed) == {"reused": 1}

    def test_expired_ticket_denied_and_metered(self):
        fed = direct_fed()
        ch = fed.channels.open("hr1", "hc", 1024, "/srb/x")
        fed.clock.advance(DEFAULT_CHANNEL_LIFETIME_S + 1)
        with pytest.raises(InvalidTicket):
            fed.channels.redeem(ch.ticket)
        assert denied_by_reason(fed) == {"expired": 1}

    @pytest.mark.parametrize("bump", [
        lambda net: net.set_down("hr1"),
        lambda net: (net.set_down("hr1"), net.set_up("hr1")),
        lambda net: net.partition("hs", "hc"),
        lambda net: (net.partition("hs", "hc"), net.heal("hs", "hc")),
    ])
    def test_topology_epoch_bump_invalidates(self, bump):
        """Any set_down/set_up/partition/heal kills in-flight tickets."""
        fed = direct_fed()
        ch = fed.channels.open("hr1", "hc", 1024, "/srb/x")
        bump(fed.network)
        with pytest.raises(InvalidTicket):
            fed.channels.redeem(ch.ticket)
        assert denied_by_reason(fed) == {"epoch": 1}

    def test_ticket_issued_after_bump_is_good(self):
        fed = direct_fed()
        fed.network.set_down("hr1")
        fed.network.set_up("hr1")
        ch = fed.channels.open("hr1", "hc", 1024, "/srb/x")
        fed.channels.redeem(ch.ticket)      # current epoch: accepted
        assert fed.channels.denied == 0

    def test_stats_surface_denials(self):
        fed = direct_fed()
        ch = fed.channels.open("hr1", "hc", 1024, "/srb/x")
        fed.network.set_down("hr1")
        with pytest.raises(InvalidTicket):
            fed.channels.redeem(ch.ticket)
        assert fed.stats()["redirects_denied"] == 1
