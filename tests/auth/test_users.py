"""Unit tests for users, groups, and challenge-response."""

import pytest

from repro.auth.users import PUBLIC, ROLES, Principal, UserRegistry
from repro.errors import AuthError, BadCredentials


@pytest.fixture
def reg():
    r = UserRegistry()
    r.add_user("sekar@sdsc", "pw", role="curator")
    r.add_user("moore@sdsc", "pw2")
    return r


class TestPrincipal:
    def test_parse(self):
        p = Principal.parse("sekar@sdsc")
        assert (p.name, p.domain) == ("sekar", "sdsc")

    def test_str_roundtrip(self):
        assert str(Principal.parse("a@b")) == "a@b"

    def test_parse_rejects_bare_name(self):
        with pytest.raises(AuthError):
            Principal.parse("sekar")

    def test_parse_rejects_empty_parts(self):
        with pytest.raises(AuthError):
            Principal.parse("@sdsc")

    def test_public_constant(self):
        assert str(PUBLIC) == "public@world"


class TestRegistry:
    def test_duplicate_rejected(self, reg):
        with pytest.raises(AuthError):
            reg.add_user("sekar@sdsc", "x")

    def test_unknown_role_rejected(self, reg):
        with pytest.raises(AuthError):
            reg.add_user("x@y", "pw", role="emperor")

    def test_role_ladder_defined(self):
        assert ROLES[0] == "public" and ROLES[-1] == "sysadmin"

    def test_role_of(self, reg):
        assert reg.role_of("sekar@sdsc") == "curator"
        assert reg.role_of(PUBLIC) == "public"

    def test_set_role(self, reg):
        reg.set_role("moore@sdsc", "sysadmin")
        assert reg.role_of("moore@sdsc") == "sysadmin"

    def test_remove_user(self, reg):
        reg.remove_user("moore@sdsc")
        assert not reg.exists("moore@sdsc")

    def test_unknown_user_raises(self, reg):
        with pytest.raises(AuthError):
            reg.role_of("ghost@nowhere")


class TestGroups:
    def test_membership(self, reg):
        reg.create_group("curators")
        reg.add_to_group("curators", "sekar@sdsc")
        assert reg.groups_of("sekar@sdsc") == ["curators"]
        assert reg.group_members("curators") == ["sekar@sdsc"]

    def test_duplicate_group_rejected(self, reg):
        reg.create_group("g")
        with pytest.raises(AuthError):
            reg.create_group("g")

    def test_add_unknown_user_to_group(self, reg):
        reg.create_group("g")
        with pytest.raises(AuthError):
            reg.add_to_group("g", "ghost@x")

    def test_remove_from_group(self, reg):
        reg.create_group("g")
        reg.add_to_group("g", "sekar@sdsc")
        reg.remove_from_group("g", "sekar@sdsc")
        assert reg.group_members("g") == []

    def test_removing_user_clears_memberships(self, reg):
        reg.create_group("g")
        reg.add_to_group("g", "moore@sdsc")
        reg.remove_user("moore@sdsc")
        assert reg.group_members("g") == []


class TestAuthentication:
    def test_password_ok(self, reg):
        assert reg.password_ok("sekar@sdsc", "pw")
        assert not reg.password_ok("sekar@sdsc", "wrong")

    def test_challenge_response_roundtrip(self, reg):
        challenge = reg.make_challenge(1)
        salt = reg.salt_of("sekar@sdsc")
        response = UserRegistry.respond("pw", salt, challenge)
        reg.verify_response("sekar@sdsc", challenge, response)   # no raise

    def test_wrong_password_fails_challenge(self, reg):
        challenge = reg.make_challenge(1)
        salt = reg.salt_of("sekar@sdsc")
        response = UserRegistry.respond("WRONG", salt, challenge)
        with pytest.raises(BadCredentials):
            reg.verify_response("sekar@sdsc", challenge, response)

    def test_response_bound_to_challenge(self, reg):
        salt = reg.salt_of("sekar@sdsc")
        response = UserRegistry.respond("pw", salt, reg.make_challenge(1))
        with pytest.raises(BadCredentials):
            reg.verify_response("sekar@sdsc", reg.make_challenge(2), response)

    def test_disabled_user_rejected(self, reg):
        reg.disable_user("sekar@sdsc")
        challenge = reg.make_challenge(1)
        response = UserRegistry.respond("pw", reg.salt_of("sekar@sdsc"),
                                        challenge)
        with pytest.raises(BadCredentials):
            reg.verify_response("sekar@sdsc", challenge, response)
        assert not reg.password_ok("sekar@sdsc", "pw")

    def test_salts_differ_between_users(self, reg):
        assert reg.salt_of("sekar@sdsc") != reg.salt_of("moore@sdsc")
