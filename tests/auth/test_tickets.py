"""Unit tests for SSO proxy tickets."""

import dataclasses

import pytest

from repro.auth.tickets import TicketAuthority
from repro.auth.users import Principal
from repro.errors import InvalidTicket
from repro.util.clock import SimClock


@pytest.fixture
def authority():
    return TicketAuthority("demozone", "key-1", SimClock())


SEKAR = Principal.parse("sekar@sdsc")


class TestIssueValidate:
    def test_roundtrip(self, authority):
        t = authority.issue(SEKAR)
        assert authority.validate(t) == SEKAR

    def test_audience_star_covers_all(self, authority):
        t = authority.issue(SEKAR, audience="*")
        authority.validate(t, audience="hpss-caltech")

    def test_specific_audience_enforced(self, authority):
        t = authority.issue(SEKAR, audience="unix-sdsc")
        authority.validate(t, audience="unix-sdsc")
        with pytest.raises(InvalidTicket):
            authority.validate(t, audience="hpss-caltech")

    def test_counters(self, authority):
        t = authority.issue(SEKAR)
        authority.validate(t)
        assert authority.issued == 1
        assert authority.validated == 1


class TestForgeryAndExpiry:
    def test_tampered_principal_rejected(self, authority):
        t = authority.issue(SEKAR)
        forged = dataclasses.replace(t, principal="evil@nowhere")
        with pytest.raises(InvalidTicket):
            authority.validate(forged)

    def test_tampered_expiry_rejected(self, authority):
        t = authority.issue(SEKAR, lifetime_s=10)
        forged = dataclasses.replace(t, expires_at=t.expires_at + 10000)
        with pytest.raises(InvalidTicket):
            authority.validate(forged)

    def test_wrong_zone_rejected(self, authority):
        other = TicketAuthority("otherzone", "key-1", authority.clock)
        t = other.issue(SEKAR)
        with pytest.raises(InvalidTicket):
            authority.validate(t)

    def test_wrong_key_rejected(self):
        clock = SimClock()
        a1 = TicketAuthority("z", "key-1", clock)
        a2 = TicketAuthority("z", "key-2", clock)
        with pytest.raises(InvalidTicket):
            a2.validate(a1.issue(SEKAR))

    def test_expiry(self, authority):
        t = authority.issue(SEKAR, lifetime_s=100.0)
        authority.clock.advance(99.0)
        authority.validate(t)
        authority.clock.advance(1.0)
        with pytest.raises(InvalidTicket):
            authority.validate(t)


class TestDelegation:
    def test_delegate_narrows_audience(self, authority):
        t = authority.issue(SEKAR)
        narrowed = authority.delegate(t, "hpss-caltech")
        assert authority.validate(narrowed, "hpss-caltech") == SEKAR
        with pytest.raises(InvalidTicket):
            authority.validate(narrowed, "unix-sdsc")

    def test_delegate_preserves_expiry_budget(self, authority):
        t = authority.issue(SEKAR, lifetime_s=100.0)
        authority.clock.advance(60.0)
        narrowed = authority.delegate(t, "res")
        assert narrowed.expires_at == pytest.approx(t.expires_at)

    def test_cannot_delegate_expired(self, authority):
        t = authority.issue(SEKAR, lifetime_s=10.0)
        authority.clock.advance(11.0)
        with pytest.raises(InvalidTicket):
            authority.delegate(t, "res")
