"""Unit tests for MySRB session keys (60-minute limit, validation)."""

import pytest

from repro.auth.sessions import DEFAULT_SESSION_LIFETIME_S, SessionManager
from repro.auth.users import Principal
from repro.errors import AuthError, SessionExpired
from repro.util.clock import SimClock

SEKAR = Principal.parse("sekar@sdsc")


@pytest.fixture
def mgr():
    return SessionManager(SimClock())


class TestLifecycle:
    def test_open_validate(self, mgr):
        sess = mgr.open(SEKAR)
        assert mgr.validate(sess.key).principal == SEKAR

    def test_default_lifetime_is_60_minutes(self):
        assert DEFAULT_SESSION_LIFETIME_S == 3600.0

    def test_keys_unique(self, mgr):
        assert mgr.open(SEKAR).key != mgr.open(SEKAR).key

    def test_close_invalidates(self, mgr):
        sess = mgr.open(SEKAR)
        mgr.close(sess.key)
        with pytest.raises(AuthError):
            mgr.validate(sess.key)

    def test_request_counter(self, mgr):
        sess = mgr.open(SEKAR)
        mgr.validate(sess.key)
        mgr.validate(sess.key)
        assert sess.requests_served == 2


class TestSecurityChecks:
    def test_unknown_key_rejected(self, mgr):
        with pytest.raises(AuthError):
            mgr.validate("sk-999999-deadbeef00000000")

    def test_malformed_key_rejected(self, mgr):
        with pytest.raises(AuthError):
            mgr.validate("not-a-session-key")

    def test_non_string_key_rejected(self, mgr):
        with pytest.raises(AuthError):
            mgr.validate(12345)  # type: ignore[arg-type]


class TestExpiry:
    def test_expires_after_60_minutes(self, mgr):
        sess = mgr.open(SEKAR)
        mgr.clock.advance(3599.0)
        mgr.validate(sess.key)
        mgr.clock.advance(1.0)
        with pytest.raises(SessionExpired):
            mgr.validate(sess.key)

    def test_expired_key_removed(self, mgr):
        sess = mgr.open(SEKAR)
        mgr.clock.advance(4000.0)
        with pytest.raises(SessionExpired):
            mgr.validate(sess.key)
        # second attempt: now unknown, not expired
        with pytest.raises(AuthError):
            mgr.validate(sess.key)

    def test_touch_renews(self, mgr):
        sess = mgr.open(SEKAR)
        mgr.clock.advance(3000.0)
        mgr.touch(sess.key)
        mgr.clock.advance(3000.0)
        mgr.validate(sess.key)   # still alive thanks to renewal

    def test_touch_does_not_count_a_request(self, mgr):
        """Regression: touch went through validate(), so every renewal
        inflated ``requests_served`` without serving anything."""
        sess = mgr.open(SEKAR)
        mgr.validate(sess.key)
        mgr.touch(sess.key)
        mgr.touch(sess.key)
        assert sess.requests_served == 1

    def test_touch_still_rejects_bad_keys(self, mgr):
        """Splitting accounting out of validation must not loosen it."""
        with pytest.raises(AuthError):
            mgr.touch("not-a-session-key")
        sess = mgr.open(SEKAR)
        mgr.clock.advance(4000.0)
        with pytest.raises(SessionExpired):
            mgr.touch(sess.key)

    def test_active_count_and_purge(self, mgr):
        mgr.open(SEKAR)
        mgr.clock.advance(1800.0)
        mgr.open(SEKAR)
        assert mgr.active_count() == 2
        mgr.clock.advance(2000.0)   # first is now expired
        assert mgr.active_count() == 1
        assert mgr.purge_expired() == 1

    def test_custom_lifetime(self):
        mgr = SessionManager(SimClock(), lifetime_s=10.0)
        sess = mgr.open(SEKAR)
        mgr.clock.advance(11.0)
        with pytest.raises(SessionExpired):
            mgr.validate(sess.key)
