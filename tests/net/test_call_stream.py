"""Chunked streaming replies (``ServiceRegistry.call_stream``)."""

import pytest

from repro.errors import NoSuchObject, ServerBusy
from repro.net.rpc import ServiceRegistry
from repro.net.simnet import Network
from repro.net.wire import message_size


class PagedService:
    """A cursor-paged op over a fixed row set, plus failure variants."""

    def __init__(self, n=25):
        self.rows = [f"row-{i:04d}" for i in range(n)]
        self.calls = 0

    def page(self, cursor=None, limit=10):
        self.calls += 1
        start = 0 if cursor is None else int(cursor)
        chunk = self.rows[start:start + limit]
        nxt = start + limit if start + limit < len(self.rows) else None
        return {"rows": chunk,
                "next_cursor": str(nxt) if nxt is not None else None}

    def broken_page(self, cursor=None, limit=10):
        """First page flows, the second raises mid-stream."""
        if cursor is not None:
            raise NoSuchObject("catalog row vanished mid-stream")
        return {"rows": self.rows[:limit], "next_cursor": str(limit)}


@pytest.fixture
def setup():
    net = Network()
    net.add_host("client")
    net.add_host("server")
    rpc = ServiceRegistry(net)
    svc = PagedService()
    rpc.register("server", "svc", svc)
    return net, rpc, svc


class TestStreaming:
    def test_all_rows_arrive_in_order(self, setup):
        net, rpc, svc = setup
        rows = [r for chunk in
                rpc.call_stream("client", "server", "svc", "page",
                                page_size=10)
                for r in chunk["rows"]]
        assert rows == svc.rows
        assert svc.calls == 3

    def test_each_chunk_is_a_charged_message_pair(self, setup):
        net, rpc, svc = setup
        calls0 = rpc.stats.calls
        resp0 = rpc.stats.response_bytes
        seen = []
        for chunk in rpc.call_stream("client", "server", "svc", "page",
                                     page_size=10):
            # response bytes accrue as the stream flows, not at the end
            seen.append(rpc.stats.response_bytes - resp0)
        assert rpc.stats.calls - calls0 == 3
        assert seen == sorted(seen) and seen[0] > 0
        assert seen[-1] > seen[0]

    def test_first_chunk_beats_last(self, setup):
        net, rpc, svc = setup
        t0 = net.clock.now
        stream = rpc.call_stream("client", "server", "svc", "page",
                                 page_size=5)
        next(stream)
        first_latency = net.clock.now - t0
        for _ in stream:
            pass
        total_latency = net.clock.now - t0
        assert first_latency < total_latency / 2
        hists = net.obs.metrics.histogram_series("rpc.stream.first_chunk_s")
        (h,) = hists.values()
        assert h.count == 1 and abs(h.max - first_latency) < 1e-12

    def test_peak_chunk_bytes_bounded_by_page(self, setup):
        net, rpc, svc = setup
        for _ in rpc.call_stream("client", "server", "svc", "page",
                                 page_size=5):
            pass
        (h,) = net.obs.metrics.histogram_series(
            "rpc.stream.chunk_bytes").values()
        whole = message_size({"rows": svc.rows, "next_cursor": None})
        assert h.count == 5
        assert h.max < whole / 2

    def test_stream_counters(self, setup):
        net, rpc, svc = setup
        for _ in rpc.call_stream("client", "server", "svc", "page",
                                 page_size=10):
            pass
        assert sum(net.obs.metrics.series("rpc.streams").values()) == 1
        assert sum(net.obs.metrics.series("rpc.stream.chunks").values()) == 3


class TestMidStreamFailure:
    def test_error_marshalled_after_first_chunk(self, setup):
        net, rpc, svc = setup
        stream = rpc.call_stream("client", "server", "svc", "broken_page",
                                 page_size=10)
        first = next(stream)
        assert len(first["rows"]) == 10     # delivered chunks stand
        fails0 = rpc.stats.failures
        with pytest.raises(NoSuchObject):
            next(stream)
        assert rpc.stats.failures == fails0 + 1

    def test_mid_stream_shed_leaves_station_clean(self, setup):
        net, rpc, svc = setup
        st = net.install_station("server", workers=1, queue_depth=0)
        stream = rpc.call_stream("client", "server", "svc", "page",
                                 page_size=10)
        next(stream)                        # chunk 1 admitted normally
        # a competing request occupies the single worker far into the
        # future, so the next chunk's admission must shed
        adm = st.admit(net.clock.now)
        st.complete(adm, net.clock.now + 1e6)
        with pytest.raises(ServerBusy):
            next(stream)
        # the shed chunk left no bookkeeping behind: every worker slot
        # is accounted for and no phantom queue entry lingers
        assert len(st._free) == st.workers
        assert st.queue_length(net.clock.now + 2e6) == 0
        assert st.shed == 1
        # ...and the stream can resume once the worker frees up
        net.clock.advance(1e6 + 1.0)
        rest = rpc.call("client", "server", "svc", "page",
                        cursor="10", limit=100)
        assert rest["rows"] == svc.rows[10:]
