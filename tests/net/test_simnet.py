"""Unit tests for the simulated network."""

import pytest

from repro.errors import HostUnreachable, NetworkError
from repro.net.simnet import LAN, WAN, LinkSpec, Network


@pytest.fixture
def net():
    n = Network()
    n.add_host("a")
    n.add_host("b", site="remote")
    return n


class TestTopology:
    def test_add_and_get_host(self, net):
        assert net.host("a").name == "a"
        assert net.host("b").site == "remote"

    def test_duplicate_host_rejected(self, net):
        with pytest.raises(NetworkError):
            net.add_host("a")

    def test_unknown_host(self, net):
        with pytest.raises(HostUnreachable):
            net.host("nope")

    def test_default_link_used(self, net):
        assert net.link("a", "b") == WAN

    def test_loopback_link(self, net):
        assert net.link("a", "a").latency_s < WAN.latency_s

    def test_set_link_symmetric(self, net):
        net.set_link("a", "b", LAN)
        assert net.link("a", "b") == LAN
        assert net.link("b", "a") == LAN

    def test_set_link_asymmetric(self, net):
        slow = LinkSpec(latency_s=1.0, bandwidth_bps=1e3)
        net.set_link("a", "b", slow, symmetric=False)
        assert net.link("a", "b") == slow
        assert net.link("b", "a") == WAN


class TestTransfer:
    def test_latency_only_for_empty_message(self, net):
        cost = net.transfer("a", "b", 0)
        assert cost == pytest.approx(WAN.latency_s)

    def test_bandwidth_charged(self, net):
        nbytes = 5_000_000
        cost = net.transfer("a", "b", nbytes)
        assert cost == pytest.approx(WAN.latency_s + nbytes / WAN.bandwidth_bps)

    def test_clock_advances(self, net):
        t0 = net.clock.now
        net.transfer("a", "b", 1000)
        assert net.clock.now > t0

    def test_counters(self, net):
        net.transfer("a", "b", 10)
        net.transfer("b", "a", 20)
        assert net.messages_sent == 2
        assert net.bytes_sent == 30

    def test_negative_size_rejected(self, net):
        with pytest.raises(NetworkError):
            net.transfer("a", "b", -1)


class TestFailures:
    def test_down_host_unreachable(self, net):
        net.set_down("b")
        with pytest.raises(HostUnreachable):
            net.transfer("a", "b", 0)

    def test_failed_attempt_charges_timeout(self, net):
        net.set_down("b")
        t0 = net.clock.now
        with pytest.raises(HostUnreachable):
            net.transfer("a", "b", 0)
        # one RTT of timeout was charged
        assert net.clock.now - t0 == pytest.approx(2 * WAN.latency_s)

    def test_failed_attempt_counted(self, net):
        """Regression: a timed-out attempt is still a message the caller
        put on the wire — it used to vanish from ``messages_sent``."""
        net.set_down("b")
        with pytest.raises(HostUnreachable):
            net.transfer("a", "b", 10)
        assert net.messages_sent == 1
        assert net.failed_attempts == 1
        assert net.bytes_sent == 0      # the payload never arrived

    def test_recovery(self, net):
        net.set_down("b")
        net.set_up("b")
        net.transfer("a", "b", 0)   # no raise

    def test_partition_blocks_both_ways(self, net):
        net.partition("a", "b")
        with pytest.raises(HostUnreachable):
            net.transfer("a", "b", 0)
        with pytest.raises(HostUnreachable):
            net.transfer("b", "a", 0)

    def test_heal_partition(self, net):
        net.partition("a", "b")
        net.heal("a", "b")
        net.transfer("a", "b", 0)

    def test_reachable_predicate(self, net):
        assert net.reachable("a", "b")
        net.partition("a", "b")
        assert not net.reachable("a", "b")


class TestScheduledTransfers:
    def test_queueing_on_shared_endpoint(self, net):
        # two transfers into 'b' serialize on b
        done1 = net.schedule_transfer("a", "b", 5_000_000)
        done2 = net.schedule_transfer("a", "b", 5_000_000)
        assert done2 > done1
        assert done2 == pytest.approx(2 * done1, rel=0.01)

    def test_parallel_on_distinct_endpoints(self, net):
        net.add_host("c")
        done1 = net.schedule_transfer("a", "b", 5_000_000)
        net.reset_queues()
        done2 = net.schedule_transfer("a", "c", 5_000_000)
        assert done1 == pytest.approx(done2)

    def test_does_not_advance_clock(self, net):
        t0 = net.clock.now
        net.schedule_transfer("a", "b", 1_000_000)
        assert net.clock.now == t0

    def test_reset_queues(self, net):
        net.schedule_transfer("a", "b", 5_000_000)
        net.reset_queues()
        assert net.host("b").busy_until == 0.0

    def test_schedule_accepts_streams(self, net):
        """Regression: queued transfers ignored ``streams``, so E12-style
        benchmarks silently ran parallel I/O at single-stream speed."""
        net.set_link("a", "b", LinkSpec(latency_s=0.0, bandwidth_bps=8e6,
                                        per_stream_bps=1e6))
        slow = net.schedule_transfer("a", "b", 1_000_000)
        net.reset_queues()
        fast = net.schedule_transfer("a", "b", 1_000_000, streams=4)
        assert slow == pytest.approx(4 * fast)

    def test_unreachable_charges_timeout(self, net):
        """Regression: an unreachable destination used to raise without
        charging the timeout that ``transfer()`` charges, so queued-mode
        benchmarks under-reported failure cost."""
        net.set_down("b")
        t0 = net.clock.now
        with pytest.raises(HostUnreachable):
            net.schedule_transfer("a", "b", 1000)
        assert net.clock.now - t0 == pytest.approx(2 * WAN.latency_s)

    def test_unreachable_counted(self, net):
        """Failure accounting matches transfer(): the attempt counts as a
        message and a failed attempt, with no bytes delivered."""
        net.set_down("b")
        with pytest.raises(HostUnreachable):
            net.schedule_transfer("a", "b", 1000)
        assert net.messages_sent == 1
        assert net.failed_attempts == 1
        assert net.bytes_sent == 0

    def test_unreachable_emits_span_and_metrics(self, net):
        net.set_down("b")
        with net.obs.tracer.trace("test") as root:
            with pytest.raises(HostUnreachable):
                net.schedule_transfer("a", "b", 1000)
        spans = root.find("net.transfer")
        assert spans and spans[0].error
        assert net.obs.metrics.get("net.failed_attempts",
                                   src="a", dst="b") == 1

    def test_unreachable_leaves_queues_untouched(self, net):
        net.set_down("b")
        with pytest.raises(HostUnreachable):
            net.schedule_transfer("a", "b", 1000)
        assert net.host("a").busy_until == 0.0
        assert net.host("b").busy_until == 0.0


class TestParallelStreams:
    def test_uncapped_link_ignores_streams(self, net):
        from repro.net.simnet import WAN
        assert WAN.cost(1_000_000, streams=8) == WAN.cost(1_000_000)

    def test_capped_link_scales_until_capacity(self):
        from repro.net.simnet import LinkSpec
        lfn = LinkSpec(latency_s=0.0, bandwidth_bps=10e6, per_stream_bps=1e6)
        assert lfn.effective_bps(1) == 1e6
        assert lfn.effective_bps(5) == 5e6
        assert lfn.effective_bps(50) == 10e6    # capacity cap

    def test_zero_streams_rejected(self):
        from repro.net.simnet import LinkSpec, NetworkError
        with pytest.raises(NetworkError):
            LinkSpec().cost(10, streams=0)

    def test_transfer_accepts_streams(self, net):
        from repro.net.simnet import LinkSpec
        net.set_link("a", "b", LinkSpec(latency_s=0.0, bandwidth_bps=8e6,
                                        per_stream_bps=1e6))
        slow = net.transfer("a", "b", 1_000_000, streams=1)
        fast = net.transfer("a", "b", 1_000_000, streams=4)
        assert slow == pytest.approx(4 * fast)

    def test_latency_unaffected_by_streams(self):
        from repro.net.simnet import LinkSpec
        lfn = LinkSpec(latency_s=0.05, bandwidth_bps=1e6, per_stream_bps=1e5)
        assert lfn.cost(0, streams=1) == lfn.cost(0, streams=9) == 0.05


class TestScheduleTransferAccounting:
    """Regression: the queued success path must be as observable as the
    blocking one — same ``net.transfer`` span, same ``net.transfer_s``
    observation (it used to emit neither)."""

    def test_success_emits_span(self, net):
        with net.obs.tracer.trace("test") as root:
            net.schedule_transfer("a", "b", 1000)
        spans = root.find("net.transfer")
        assert len(spans) == 1
        assert spans[0].attrs.get("queued") is True
        assert spans[0].attrs["done"] > spans[0].attrs["start"]

    def test_success_observes_latency_histogram(self, net):
        net.schedule_transfer("a", "b", 1000)
        hist = net.obs.metrics.histogram("net.transfer_s", src="a", dst="b")
        assert hist is not None and hist.count == 1
        assert hist.sum == pytest.approx(WAN.cost(1000))

    def test_span_does_not_advance_clock(self, net):
        t0 = net.clock.now
        net.schedule_transfer("a", "b", 1000)
        assert net.clock.now == t0


class TestTransferGroup:
    @pytest.fixture
    def fan_net(self):
        n = Network()
        n.add_host("src")
        for i in range(4):
            n.add_host(f"dst{i}")
        return n

    def test_empty_group_is_free(self, fan_net):
        from repro.net.simnet import TransferGroup
        t0 = fan_net.clock.now
        assert TransferGroup(fan_net).run() == []
        assert fan_net.clock.now == t0

    def test_fanout_charges_makespan_not_sum(self, fan_net):
        one = WAN.cost(1_000_000)
        t0 = fan_net.clock.now
        outcomes = fan_net.parallel_transfers(
            [("src", f"dst{i}", 1_000_000) for i in range(4)])
        assert all(o.ok for o in outcomes)
        elapsed = fan_net.clock.now - t0
        assert elapsed == pytest.approx(one)          # max, not 4x
        assert fan_net.bytes_sent == 4_000_000
        assert fan_net.messages_sent == 4

    def test_same_path_members_serialize(self, fan_net):
        one = WAN.cost(1_000_000)
        t0 = fan_net.clock.now
        fan_net.parallel_transfers(
            [("src", "dst0", 1_000_000), ("src", "dst0", 1_000_000)])
        assert fan_net.clock.now - t0 == pytest.approx(2 * one)

    def test_failed_member_does_not_poison_siblings(self, fan_net):
        from repro.net.simnet import TransferGroup
        fan_net.set_down("dst1")
        group = TransferGroup(fan_net, label="t")
        for i in range(3):
            group.add("src", f"dst{i}", 1_000_000, key=i)
        outcomes = group.run()
        assert [o.ok for o in outcomes] == [True, False, True]
        assert isinstance(outcomes[1].error, HostUnreachable)
        assert outcomes[1].done - outcomes[1].start == \
            pytest.approx(2 * WAN.latency_s)
        assert fan_net.failed_attempts == 1
        assert fan_net.bytes_sent == 2_000_000

    def test_group_respects_prior_busy_until(self, fan_net):
        fan_net.host("src").busy_until = 5.0
        outcomes = fan_net.parallel_transfers([("src", "dst0", 0)])
        assert outcomes[0].start == pytest.approx(5.0)

    def test_group_updates_busy_until(self, fan_net):
        outcomes = fan_net.parallel_transfers(
            [("src", "dst0", 1_000_000), ("src", "dst1", 2_000_000)])
        assert fan_net.host("src").busy_until == \
            pytest.approx(max(o.done for o in outcomes))
        assert fan_net.host("dst0").busy_until == \
            pytest.approx(outcomes[0].done)

    def test_group_emits_span_and_metrics(self, fan_net):
        with fan_net.obs.tracer.trace("test") as root:
            fan_net.parallel_transfers(
                [("src", "dst0", 1000), ("src", "dst1", 1000)],
                label="unit")
        gspans = root.find("net.parallel.group")
        assert len(gspans) == 1
        assert gspans[0].counters["members"] == 2
        assert len(gspans[0].find("net.transfer")) == 2
        m = fan_net.obs.metrics
        assert m.get("net.parallel.groups", label="unit") == 1
        assert m.get("net.parallel.members", label="unit") == 2
        hist = m.histogram("net.parallel.makespan_s", label="unit")
        assert hist is not None and hist.count == 1
        saved = m.histogram("net.parallel.saved_s", label="unit")
        assert saved.sum == pytest.approx(WAN.cost(1000))  # 2 cost - 1 max

    def test_group_runs_once(self, fan_net):
        from repro.net.simnet import TransferGroup
        group = TransferGroup(fan_net)
        group.add("src", "dst0", 10)
        group.run()
        with pytest.raises(NetworkError):
            group.run()

    def test_negative_size_rejected_at_add(self, fan_net):
        from repro.net.simnet import TransferGroup
        with pytest.raises(NetworkError):
            TransferGroup(fan_net).add("src", "dst0", -1)


class TestTopologyEpoch:
    def test_mutations_bump_epoch(self, net):
        e0 = net.topology_epoch
        net.set_down("b")
        net.set_up("b")
        net.partition("a", "b")
        net.heal("a", "b")
        assert net.topology_epoch == e0 + 4


class TestFailedMemberAccounting:
    """Regression: a failed TransferGroup member never advanced
    ``path_busy``/``host_done``, so its timeout occupied neither its
    path nor its endpoints — later members (and later queued transfers)
    started as if the dead attempt had been free."""

    @pytest.fixture
    def fan_net(self):
        n = Network()
        n.add_host("src")
        for i in range(3):
            n.add_host(f"dst{i}")
        return n

    def test_failed_members_serialize_on_their_path(self, fan_net):
        from repro.net.simnet import TransferGroup
        fan_net.set_down("dst1")
        timeout = 2 * WAN.latency_s
        t0 = fan_net.clock.now
        group = TransferGroup(fan_net)
        group.add("src", "dst1", 1_000_000)
        group.add("src", "dst1", 1_000_000)   # same dead path
        outcomes = group.run()
        # the second attempt holds until the first one's timeout expires
        assert outcomes[1].start == pytest.approx(outcomes[0].done)
        assert outcomes[1].done == pytest.approx(t0 + 2 * timeout)
        assert fan_net.clock.now == pytest.approx(t0 + 2 * timeout)

    def test_failed_member_occupies_endpoints(self, fan_net):
        from repro.net.simnet import TransferGroup
        fan_net.set_down("dst1")
        timeout = 2 * WAN.latency_s
        t0 = fan_net.clock.now
        group = TransferGroup(fan_net)
        group.add("src", "dst1", 1_000_000)
        group.run()
        # the charged timeout shows up in both endpoints' busy floors
        # (never *binding* for the dead host: the clock already passed
        # it when the group charged its makespan)
        assert fan_net.host("src").busy_until == pytest.approx(t0 + timeout)
        assert fan_net.host("dst1").busy_until == pytest.approx(t0 + timeout)
        assert fan_net.clock.now >= fan_net.host("dst1").busy_until

    def test_mixed_group_makespan_covers_failed_tail(self, fan_net):
        from repro.net.simnet import TransferGroup
        fan_net.set_down("dst1")
        timeout = 2 * WAN.latency_s
        t0 = fan_net.clock.now
        group = TransferGroup(fan_net)
        group.add("src", "dst0", 100)          # quick success
        group.add("src", "dst1", 100)          # timeout
        group.add("src", "dst1", 100)          # serialized second timeout
        group.run()
        assert fan_net.clock.now == pytest.approx(t0 + 2 * timeout)
        assert fan_net.failed_attempts == 2


class TestSetDownClearsQueues:
    """Regression: ``set_down`` left ``busy_until`` standing, so a
    restarted host was charged phantom queueing delay from transfers
    that died with the crash."""

    def test_restarted_host_starts_fresh(self, net):
        net.add_host("c")
        done = net.schedule_transfer("a", "b", 5_000_000)
        assert net.host("b").busy_until == pytest.approx(done)
        net.set_down("b")
        assert net.host("b").busy_until == 0.0
        net.set_up("b")
        # a queued transfer from an idle host sees no leftover backlog
        d2 = net.schedule_transfer("c", "b", 0)
        assert d2 == pytest.approx(net.clock.now + WAN.latency_s)

    def test_up_host_keeps_its_queue(self, net):
        """Only the *crashed* host forgets: its peer still has its own
        side of the queued work."""
        done = net.schedule_transfer("a", "b", 5_000_000)
        net.set_down("b")
        assert net.host("a").busy_until == pytest.approx(done)
