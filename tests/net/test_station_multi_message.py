"""Admission bookkeeping across multi-message exchanges.

A paged query is one logical exchange made of several charged message
pairs, each admitted separately.  A chunk shed mid-exchange must behave
exactly like any other shed: nothing pushed to the worker heap, no
phantom queue entry, no ``busy_until`` the station would later charge a
stranger for — the regression here pins that under an open-loop burst
where many exchanges interleave and several die between chunks.
"""

import pytest

from repro.errors import ServerBusy
from repro.net.rpc import ServiceRegistry
from repro.net.simnet import Network

SERVICE_S = 0.05


class SlowPagedService:
    """Two-page op whose handler occupies a worker for SERVICE_S."""

    def __init__(self, network):
        self.network = network
        self.served = 0

    def page(self, cursor=None, limit=10):
        self.network.clock.advance(SERVICE_S)
        self.served += 1
        if cursor is None:
            return {"rows": list(range(limit)), "next_cursor": "1"}
        return {"rows": list(range(limit)), "next_cursor": None}


@pytest.fixture
def setup():
    net = Network()
    net.add_host("client")
    net.add_host("server")
    rpc = ServiceRegistry(net)
    svc = SlowPagedService(net)
    rpc.register("server", "svc", svc)
    station = net.install_station("server", workers=1, queue_depth=1)
    return net, rpc, svc, station


def test_open_loop_burst_sheds_leave_no_stale_state(setup):
    net, rpc, svc, st = setup
    n_clients = 10
    # phase A: every client opens its exchange at a scheduled arrival
    in_flight = []
    for i in range(n_clients):
        try:
            with rpc.open_loop(0.001 * i):
                reply = rpc.call("client", "server", "svc", "page",
                                 cursor=None, limit=10)
            in_flight.append((i, reply["next_cursor"]))
        except ServerBusy:
            pass
    assert 0 < len(in_flight) < n_clients    # burst saturated the queue
    # phase B: the survivors ask for their second chunk while the worker
    # is still draining phase A — these sheds happen *mid-exchange*
    mid_sheds = 0
    for i, cursor in in_flight:
        try:
            with rpc.open_loop(0.001 * (n_clients + i)):
                rpc.call("client", "server", "svc", "page",
                         cursor=cursor, limit=10)
        except ServerBusy:
            mid_sheds += 1
    assert mid_sheds > 0

    # invariants: every worker slot is back on the heap, the wait queue
    # drains to zero once time passes, and the books balance
    assert len(st._free) == st.workers
    assert st.queue_length(max(st._free) + 1.0) == 0
    assert st.admitted + st.shed == n_clients + len(in_flight)
    assert st.admitted == svc.served

    # a quiet-period request is admitted instantly: no phantom
    # busy_until / queue entry survived the burst
    net.clock.advance(max(st._free) + 1.0)
    rpc.call("client", "server", "svc", "page", cursor=None, limit=10)
    assert rpc.last_timing.wait == 0.0 and not rpc.last_timing.shed


def test_serial_stream_after_burst_is_unaffected(setup):
    """Post-burst, a full exchange pays only its own service time."""
    net, rpc, svc, st = setup
    for i in range(6):
        try:
            with rpc.open_loop(0.0):
                rpc.call("client", "server", "svc", "page",
                         cursor=None, limit=10)
        except ServerBusy:
            pass
    net.clock.advance(1000.0)
    t0 = net.clock.now
    chunks = list(rpc.call_stream("client", "server", "svc", "page",
                                  page_size=10))
    assert len(chunks) == 2
    elapsed = net.clock.now - t0
    link = net.default_link.latency_s
    assert elapsed == pytest.approx(2 * SERVICE_S + 4 * link, rel=0.5)
