"""Unit tests for the per-host worker-pool station and admission."""

import pytest

from repro.errors import NetworkError, ServerBusy
from repro.net.simnet import Network, ServiceStation


class TestServiceStation:
    def test_validation(self):
        with pytest.raises(NetworkError):
            ServiceStation("h", workers=0)
        with pytest.raises(NetworkError):
            ServiceStation("h", workers=1, queue_depth=-1)

    def test_free_worker_no_wait(self):
        st = ServiceStation("h", workers=2)
        adm = st.admit(1.0)
        assert adm.start == 1.0
        assert adm.wait == 0.0
        assert adm.depth == 0
        assert adm.held

    def test_busy_worker_queues_fifo(self):
        st = ServiceStation("h", workers=1)
        a1 = st.admit(0.0)
        st.complete(a1, 5.0)
        a2 = st.admit(1.0)
        assert a2.start == 5.0
        assert a2.wait == 4.0

    def test_waits_stack_behind_each_other(self):
        st = ServiceStation("h", workers=1)
        st.complete(st.admit(0.0), 3.0)
        a2 = st.admit(0.0)
        st.complete(a2, a2.start + 3.0)     # served 3..6
        a3 = st.admit(0.0)
        assert a2.wait == 3.0
        assert a3.start == 6.0 and a3.wait == 6.0

    def test_parallel_workers_absorb_burst(self):
        st = ServiceStation("h", workers=3)
        adms = [st.admit(0.0) for _ in range(3)]
        assert all(a.wait == 0.0 for a in adms)

    def test_depth_counts_still_waiting_requests(self):
        st = ServiceStation("h", workers=1)
        st.complete(st.admit(0.0), 10.0)
        st.complete(st.admit(0.0), 20.0)    # waits until 10
        a3 = st.admit(0.0)                  # waits until 20
        assert a3.depth == 1                # one request still queued
        # by t=15 the 10-starter is in service; only the 20-starter waits
        assert st.queue_length(15.0) == 1
        assert st.queue_length(25.0) == 0

    def test_bounded_queue_sheds_with_retry_hint(self):
        st = ServiceStation("h", workers=1, queue_depth=1)
        st.complete(st.admit(0.0), 10.0)
        st.complete(st.admit(0.0), 20.0)    # occupies the one queue slot
        with pytest.raises(ServerBusy) as exc:
            st.admit(2.0)
        assert exc.value.host == "h"
        # the worker frees at 20 (after serving the queued request)
        assert exc.value.retry_after == pytest.approx(18.0)
        assert st.shed == 1
        assert st.admitted == 2

    def test_zero_depth_is_a_loss_system_not_shed_everything(self):
        """queue_depth=0 admits a request a free worker can take
        immediately and sheds only requests that would have to wait."""
        st = ServiceStation("h", workers=1, queue_depth=0)
        a1 = st.admit(0.0)
        assert a1.wait == 0.0
        st.complete(a1, 5.0)
        with pytest.raises(ServerBusy):
            st.admit(1.0)                   # worker busy until 5, no queue
        assert st.admit(5.0).wait == 0.0    # free again: admitted

    def test_reentrant_admission_is_contention_free(self):
        st = ServiceStation("h", workers=1)
        outer = st.admit(0.0)               # checks out the only worker
        inner = st.admit(0.0)               # handler calling back in
        assert inner.wait == 0.0
        assert not inner.held
        st.complete(inner, 1.0)             # held=False: no worker returned
        st.complete(outer, 2.0)
        assert st.admit(0.0).start == 2.0   # only the outer slot came back

    def test_reset_forgets_bookkeeping(self):
        st = ServiceStation("h", workers=1)
        st.complete(st.admit(0.0), 50.0)
        st.reset()
        assert st.admit(0.0).wait == 0.0


class TestNetworkStations:
    @pytest.fixture
    def net(self):
        n = Network()
        n.add_host("a")
        n.add_host("b")
        return n

    def test_install_and_lookup(self, net):
        assert net.station("b") is None
        st = net.install_station("b", workers=2, queue_depth=4)
        assert net.station("b") is st
        assert st.workers == 2 and st.queue_depth == 4

    def test_reinstall_replaces_bookkeeping(self, net):
        st = net.install_station("b", workers=1)
        st.complete(st.admit(0.0), 99.0)
        st2 = net.install_station("b", workers=1)
        assert st2.admit(0.0).wait == 0.0

    def test_set_down_resets_station(self, net):
        """Regression: a crashed server's in-flight work cannot complete,
        so its restarted worker pool must not charge phantom waits."""
        st = net.install_station("b", workers=1)
        st.complete(st.admit(0.0), 99.0)
        net.set_down("b")
        net.set_up("b")
        assert net.station("b").admit(0.0).wait == 0.0

    def test_reset_queues_resets_stations(self, net):
        st = net.install_station("b", workers=1)
        st.complete(st.admit(0.0), 99.0)
        net.reset_queues()
        assert st.admit(0.0).wait == 0.0
