"""Unit tests for wire-size accounting."""

from dataclasses import dataclass

from hypothesis import given, strategies as st

from repro.net.wire import MESSAGE_HEADER, message_size, sizeof


class TestSizeof:
    def test_scalars_have_fixed_cost(self):
        assert sizeof(None) == sizeof(True)
        assert sizeof(1) == sizeof(2**40)

    def test_bytes_scale_linearly(self):
        assert sizeof(b"x" * 100) - sizeof(b"") == 100

    def test_str_counts_utf8(self):
        assert sizeof("é") > sizeof("e") - 1   # 2 utf-8 bytes vs 1

    def test_containers_sum_members(self):
        assert sizeof([1, 2]) > sizeof([1])
        assert sizeof({"k": "v"}) > sizeof({})

    def test_dataclass_uses_dict(self):
        @dataclass
        class P:
            x: int
            label: str
        assert sizeof(P(1, "hello")) > sizeof(P(1, ""))

    def test_message_includes_header(self):
        assert message_size(None) == MESSAGE_HEADER + sizeof(None)


class TestSizeofProperties:
    @given(st.binary(max_size=2000))
    def test_payload_dominates_for_big_blobs(self, blob):
        assert sizeof(blob) >= len(blob)

    @given(st.lists(st.integers(), max_size=20))
    def test_monotone_in_list_length(self, xs):
        assert sizeof(xs + [0]) > sizeof(xs)

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=10))
    def test_dict_size_positive(self, d):
        assert sizeof(d) > 0
