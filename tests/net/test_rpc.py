"""Unit tests for the RPC layer."""

import pytest

from repro.errors import NoSuchObject, RpcError, SrbError
from repro.net.rpc import ServiceRegistry
from repro.net.simnet import Network


class EchoService:
    def echo(self, text: str) -> str:
        return text

    def fail_srb(self):
        raise NoSuchObject("nothing here")

    def fail_bug(self):
        raise ValueError("internal bug")

    def _private(self):
        return "secret"


@pytest.fixture
def setup():
    net = Network()
    net.add_host("client")
    net.add_host("server")
    rpc = ServiceRegistry(net)
    rpc.register("server", "svc", EchoService())
    return net, rpc


class TestCall:
    def test_roundtrip(self, setup):
        net, rpc = setup
        assert rpc.call("client", "server", "svc", "echo", text="hi") == "hi"

    def test_charges_clock_both_ways(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        rpc.call("client", "server", "svc", "echo", text="hi")
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s

    def test_response_size_charged(self, setup):
        net, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="x")
        small = net.bytes_sent
        net2 = Network(); net2.add_host("client"); net2.add_host("server")
        rpc2 = ServiceRegistry(net2); rpc2.register("server", "svc", EchoService())
        rpc2.call("client", "server", "svc", "echo", text="x" * 10000)
        assert net2.bytes_sent > small + 9000

    def test_stats(self, setup):
        _, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="hi")
        snap = rpc.stats.snapshot()
        assert snap["calls"] == 1
        assert snap["request_bytes"] > 0
        assert snap["response_bytes"] > 0


class TestErrors:
    def test_srb_errors_propagate_typed(self, setup):
        _, rpc = setup
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")

    def test_non_srb_errors_wrapped(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "fail_bug")

    def test_error_response_still_charged(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s
        assert rpc.stats.failures == 1

    def test_unreachable_host_counted(self, setup):
        """Regression: a call that dies on the request transfer used to
        leave ``calls`` and ``failures`` both at zero — invisible in
        exactly the situation the stats exist for."""
        net, rpc = setup
        net.set_down("server")
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            rpc.call("client", "server", "svc", "echo", text="hi")
        assert rpc.stats.calls == 1
        assert rpc.stats.failures == 1
        assert rpc.stats.request_bytes > 0

    def test_unknown_service(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "nope", "echo", text="x")

    def test_unknown_method(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "nope")

    def test_private_method_blocked(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "_private")

    def test_duplicate_registration_rejected(self, setup):
        net, rpc = setup
        with pytest.raises(RpcError):
            rpc.register("server", "svc", EchoService())

    def test_deregister(self, setup):
        _, rpc = setup
        rpc.deregister("server", "svc")
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "echo", text="x")


class TestCallBatch:
    def test_all_ok(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc",
                                 [("echo", {"text": f"m{i}"})
                                  for i in range(5)])
        assert [r.unwrap() for r in results] == [f"m{i}" for i in range(5)]

    def test_one_message_pair(self, setup):
        """N batched items cost exactly two messages (request + response),
        not 2N — the amortization the bulk data plane is built on."""
        net, rpc = setup
        before = net.messages_sent
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x"})] * 40)
        assert net.messages_sent - before == 2
        assert rpc.stats.calls == 1

    def test_one_latency_not_n(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        n = 40
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x"})] * n)
        elapsed = net.clock.now - t0
        assert elapsed < n * net.default_link.latency_s

    def test_error_isolation(self, setup):
        """Item k failing with an SrbError doesn't poison the batch: the
        other items run and return, and item k's typed error surfaces at
        the caller."""
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("echo", {"text": "a"}),
            ("fail_srb", {}),
            ("echo", {"text": "b"}),
        ])
        assert results[0].unwrap() == "a"
        assert results[2].unwrap() == "b"
        assert not results[1].ok
        with pytest.raises(NoSuchObject):
            results[1].unwrap()

    def test_bug_wrapped_per_item(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("fail_bug", {}),
            ("echo", {"text": "ok"}),
        ])
        assert not results[0].ok
        assert isinstance(results[0].error, RpcError)
        assert results[1].unwrap() == "ok"

    def test_unknown_and_private_methods_isolated(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("nope", {}),
            ("_private", {}),
            ("echo", {"text": "still fine"}),
        ])
        assert [r.ok for r in results] == [False, False, True]
        assert isinstance(results[0].error, RpcError)
        assert isinstance(results[1].error, RpcError)

    def test_failures_counted_per_item(self, setup):
        _, rpc = setup
        rpc.call_batch("client", "server", "svc",
                       [("fail_srb", {}), ("fail_srb", {}),
                        ("echo", {"text": "x"})])
        assert rpc.stats.failures == 2

    def test_unreachable_fails_whole_batch(self, setup):
        """The request leg never arriving is a transport failure, not a
        per-item one: the whole batch raises — after charging the same
        timeout a single call would pay — and is visible in the stats."""
        net, rpc = setup
        net.set_down("server")
        from repro.errors import HostUnreachable
        t0 = net.clock.now
        with pytest.raises(HostUnreachable):
            rpc.call_batch("client", "server", "svc",
                           [("echo", {"text": "x"})] * 3)
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s
        assert rpc.stats.calls == 1
        assert rpc.stats.failures == 1

    def test_request_bytes_sum_payloads(self, setup):
        net, rpc = setup
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x" * 1000})] * 10)
        assert rpc.stats.request_bytes > 10 * 1000

    def test_empty_batch(self, setup):
        _, rpc = setup
        assert rpc.call_batch("client", "server", "svc", []) == []
