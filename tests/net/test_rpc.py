"""Unit tests for the RPC layer."""

import pytest

from repro.errors import NoSuchObject, RpcError, SrbError
from repro.net.rpc import ServiceRegistry
from repro.net.simnet import Network


class EchoService:
    def echo(self, text: str) -> str:
        return text

    def fail_srb(self):
        raise NoSuchObject("nothing here")

    def fail_bug(self):
        raise ValueError("internal bug")

    def _private(self):
        return "secret"


@pytest.fixture
def setup():
    net = Network()
    net.add_host("client")
    net.add_host("server")
    rpc = ServiceRegistry(net)
    rpc.register("server", "svc", EchoService())
    return net, rpc


class TestCall:
    def test_roundtrip(self, setup):
        net, rpc = setup
        assert rpc.call("client", "server", "svc", "echo", text="hi") == "hi"

    def test_charges_clock_both_ways(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        rpc.call("client", "server", "svc", "echo", text="hi")
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s

    def test_response_size_charged(self, setup):
        net, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="x")
        small = net.bytes_sent
        net2 = Network(); net2.add_host("client"); net2.add_host("server")
        rpc2 = ServiceRegistry(net2); rpc2.register("server", "svc", EchoService())
        rpc2.call("client", "server", "svc", "echo", text="x" * 10000)
        assert net2.bytes_sent > small + 9000

    def test_stats(self, setup):
        _, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="hi")
        snap = rpc.stats.snapshot()
        assert snap["calls"] == 1
        assert snap["request_bytes"] > 0
        assert snap["response_bytes"] > 0


class TestErrors:
    def test_srb_errors_propagate_typed(self, setup):
        _, rpc = setup
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")

    def test_non_srb_errors_wrapped(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "fail_bug")

    def test_error_response_still_charged(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s
        assert rpc.stats.failures == 1

    def test_unreachable_host_counted(self, setup):
        """Regression: a call that dies on the request transfer used to
        leave ``calls`` and ``failures`` both at zero — invisible in
        exactly the situation the stats exist for."""
        net, rpc = setup
        net.set_down("server")
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            rpc.call("client", "server", "svc", "echo", text="hi")
        assert rpc.stats.calls == 1
        assert rpc.stats.failures == 1
        assert rpc.stats.request_bytes > 0

    def test_unknown_service(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "nope", "echo", text="x")

    def test_unknown_method(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "nope")

    def test_private_method_blocked(self, setup):
        _, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "_private")

    def test_duplicate_registration_rejected(self, setup):
        net, rpc = setup
        with pytest.raises(RpcError):
            rpc.register("server", "svc", EchoService())

    def test_deregister(self, setup):
        _, rpc = setup
        rpc.deregister("server", "svc")
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "echo", text="x")


class TestCallBatch:
    def test_all_ok(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc",
                                 [("echo", {"text": f"m{i}"})
                                  for i in range(5)])
        assert [r.unwrap() for r in results] == [f"m{i}" for i in range(5)]

    def test_one_message_pair(self, setup):
        """N batched items cost exactly two messages (request + response),
        not 2N — the amortization the bulk data plane is built on."""
        net, rpc = setup
        before = net.messages_sent
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x"})] * 40)
        assert net.messages_sent - before == 2
        assert rpc.stats.calls == 1

    def test_one_latency_not_n(self, setup):
        net, rpc = setup
        t0 = net.clock.now
        n = 40
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x"})] * n)
        elapsed = net.clock.now - t0
        assert elapsed < n * net.default_link.latency_s

    def test_error_isolation(self, setup):
        """Item k failing with an SrbError doesn't poison the batch: the
        other items run and return, and item k's typed error surfaces at
        the caller."""
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("echo", {"text": "a"}),
            ("fail_srb", {}),
            ("echo", {"text": "b"}),
        ])
        assert results[0].unwrap() == "a"
        assert results[2].unwrap() == "b"
        assert not results[1].ok
        with pytest.raises(NoSuchObject):
            results[1].unwrap()

    def test_bug_wrapped_per_item(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("fail_bug", {}),
            ("echo", {"text": "ok"}),
        ])
        assert not results[0].ok
        assert isinstance(results[0].error, RpcError)
        assert results[1].unwrap() == "ok"

    def test_unknown_and_private_methods_isolated(self, setup):
        _, rpc = setup
        results = rpc.call_batch("client", "server", "svc", [
            ("nope", {}),
            ("_private", {}),
            ("echo", {"text": "still fine"}),
        ])
        assert [r.ok for r in results] == [False, False, True]
        assert isinstance(results[0].error, RpcError)
        assert isinstance(results[1].error, RpcError)

    def test_failures_counted_per_item(self, setup):
        _, rpc = setup
        rpc.call_batch("client", "server", "svc",
                       [("fail_srb", {}), ("fail_srb", {}),
                        ("echo", {"text": "x"})])
        assert rpc.stats.failures == 2

    def test_unreachable_fails_whole_batch(self, setup):
        """The request leg never arriving is a transport failure, not a
        per-item one: the whole batch raises — after charging the same
        timeout a single call would pay — and is visible in the stats."""
        net, rpc = setup
        net.set_down("server")
        from repro.errors import HostUnreachable
        t0 = net.clock.now
        with pytest.raises(HostUnreachable):
            rpc.call_batch("client", "server", "svc",
                           [("echo", {"text": "x"})] * 3)
        assert net.clock.now - t0 >= 2 * net.default_link.latency_s
        assert rpc.stats.calls == 1
        assert rpc.stats.failures == 1

    def test_request_bytes_sum_payloads(self, setup):
        net, rpc = setup
        rpc.call_batch("client", "server", "svc",
                       [("echo", {"text": "x" * 1000})] * 10)
        assert rpc.stats.request_bytes > 10 * 1000

    def test_empty_batch(self, setup):
        _, rpc = setup
        assert rpc.call_batch("client", "server", "svc", []) == []


class NetAwareService:
    """Service whose handlers can sabotage the network mid-call."""

    def __init__(self, net):
        self.net = net

    def echo(self, text: str) -> str:
        return text

    def partition_reply(self) -> str:
        # a partition opens while the handler runs: the response leg
        # will never make it back to the caller
        self.net.partition("client", "server")
        return "you will never see this"


class SlowService:
    """Service with a genuine (clock-advancing) service time, so its
    worker stays busy long enough for admission tests to contend."""

    SERVICE_S = 0.5

    def __init__(self, net):
        self.net = net

    def work(self) -> str:
        self.net.clock.advance(self.SERVICE_S)
        return "done"


class TestErrorPathAccounting:
    """Regression: error responses used to update only the plain
    counters — ``rpc.response_bytes`` and ``rpc.call_s`` were never
    emitted for a failed call, so error traffic and error latency were
    invisible exactly where a saturation curve needs them."""

    def test_srb_error_emits_labeled_metrics(self, setup):
        net, rpc = setup
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")
        m = net.obs.metrics
        assert m.get("rpc.response_bytes", service="svc",
                     method="fail_srb", error="NoSuchObject") > 0
        hist = m.histogram("rpc.call_s", service="svc",
                           method="fail_srb", error="NoSuchObject")
        assert hist is not None and hist.count == 1
        assert hist.min >= 2 * net.default_link.latency_s
        assert rpc.stats.response_bytes > 0

    def test_wrapped_bug_emits_labeled_metrics(self, setup):
        net, rpc = setup
        with pytest.raises(RpcError):
            rpc.call("client", "server", "svc", "fail_bug")
        m = net.obs.metrics
        assert m.get("rpc.response_bytes", service="svc",
                     method="fail_bug", error="ValueError") > 0
        assert m.histogram("rpc.call_s", service="svc",
                           method="fail_bug", error="ValueError").count == 1

    def test_success_metrics_unlabeled_and_separate(self, setup):
        net, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="hi")
        with pytest.raises(NoSuchObject):
            rpc.call("client", "server", "svc", "fail_srb")
        m = net.obs.metrics
        # the success series carries no error label and is not polluted
        assert m.get("rpc.response_bytes", service="svc",
                     method="echo") > 0
        assert m.histogram("rpc.call_s", service="svc",
                           method="echo").count == 1

    def test_response_leg_partition_counted(self, setup):
        """Regression: the handler succeeding but the response transfer
        dying (partition opened mid-call) used to escape without
        touching ``failures`` — an uncounted failed call."""
        net, rpc = setup
        rpc.register("server", "evil", NetAwareService(net))
        failures0 = rpc.stats.failures
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            rpc.call("client", "server", "evil", "partition_reply")
        assert rpc.stats.failures == failures0 + 1
        m = net.obs.metrics
        assert m.get("rpc.failures", service="evil",
                     method="partition_reply", error="unreachable") == 1
        assert m.histogram("rpc.call_s", service="evil",
                           method="partition_reply",
                           error="unreachable").count == 1

    def test_response_leg_partition_counted_in_batch(self, setup):
        net, rpc = setup
        rpc.register("server", "evil", NetAwareService(net))
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            rpc.call_batch("client", "server", "evil",
                           [("echo", {"text": "a"}),
                            ("partition_reply", {})])
        assert rpc.stats.failures == 1
        m = net.obs.metrics
        assert m.get("rpc.failures", service="evil",
                     method="<batch>", error="unreachable") == 1

    def test_batch_item_error_visible_in_metrics(self, setup):
        net, rpc = setup
        rpc.call_batch("client", "server", "svc",
                       [("fail_srb", {}), ("echo", {"text": "x"})])
        m = net.obs.metrics
        assert m.get("rpc.failures", service="svc", method="fail_srb",
                     error="NoSuchObject") == 1
        # the batch itself completed: its latency lands on the
        # unlabeled series
        assert m.histogram("rpc.call_s", service="svc",
                           method="<batch>").count == 1


class TestAdmission:
    """Worker-pool admission threaded through call/call_batch."""

    def test_no_station_no_admission_metrics(self, setup):
        net, rpc = setup
        rpc.call("client", "server", "svc", "echo", text="x")
        assert net.obs.metrics.total("srb.admission.admitted") == 0

    def test_closed_loop_wait_advances_clock(self, setup):
        net, rpc = setup
        st = net.install_station("server", workers=1)
        st.complete(st.admit(net.clock.now), 5.0)  # worker busy until 5
        t0 = net.clock.now
        assert rpc.call("client", "server", "svc", "echo", text="x") == "x"
        # the caller genuinely waited for the worker before the handler
        assert net.clock.now >= 5.0 + net.default_link.latency_s
        m = net.obs.metrics
        assert m.get("srb.admission.admitted", host="server",
                     service="svc", method="echo") == 1
        wait = m.histogram("srb.queue.wait_s", host="server", service="svc")
        assert wait.count == 1
        # the wait is 5.0 minus the request leg (latency + a few bytes)
        assert wait.max == pytest.approx(
            5.0 - t0 - net.default_link.latency_s, rel=1e-3)

    def test_open_loop_overlaps_instead_of_serializing(self, setup):
        net, rpc = setup
        rpc.register("server", "slow", SlowService(net))
        net.install_station("server", workers=1)
        t = net.clock.now
        with rpc.open_loop(t):
            rpc.call("client", "server", "slow", "work")
        first = rpc.last_timing
        clock_after_first = net.clock.now
        with rpc.open_loop(t):
            rpc.call("client", "server", "slow", "work")
        second = rpc.last_timing
        # same arrival, one worker: the second request queues behind the
        # first's full service time -- in bookkeeping, not on the clock
        assert first.wait == 0.0
        assert second.wait == pytest.approx(SlowService.SERVICE_S)
        assert second.latency == pytest.approx(
            first.latency + second.wait)
        assert net.clock.now - clock_after_first == pytest.approx(
            clock_after_first - t)      # clock moved by legs+service only

    def test_bounded_queue_sheds_through_call(self, setup):
        net, rpc = setup
        rpc.register("server", "slow", SlowService(net))
        net.install_station("server", workers=1, queue_depth=0)
        t = net.clock.now
        with rpc.open_loop(t):
            rpc.call("client", "server", "slow", "work")
        from repro.errors import ServerBusy
        t_before = net.clock.now
        with pytest.raises(ServerBusy) as exc:
            with rpc.open_loop(t):
                rpc.call("client", "server", "slow", "work")
        # the hint points at the busy worker freeing up
        assert exc.value.retry_after == pytest.approx(
            SlowService.SERVICE_S)
        # fast-fail: one request leg + one tiny busy reply, no queueing
        # and no service time
        assert net.clock.now - t_before == pytest.approx(
            2 * net.default_link.latency_s, rel=0.5)
        timing = rpc.last_timing
        assert timing.shed and not timing.ok
        assert timing.retry_after == pytest.approx(exc.value.retry_after)
        m = net.obs.metrics
        assert m.get("srb.admission.shed", host="server", service="slow",
                     method="work") == 1
        assert m.get("rpc.failures", service="slow", method="work",
                     error="ServerBusy") == 1
        assert rpc.stats.failures == 1

    def test_batch_occupies_one_worker(self, setup):
        net, rpc = setup
        net.install_station("server", workers=1)
        t = net.clock.now
        with rpc.open_loop(t):
            rpc.call_batch("client", "server", "svc",
                           [("echo", {"text": "x"})] * 10)
        assert rpc.last_timing.wait == 0.0
        m = net.obs.metrics
        assert m.get("srb.admission.admitted", host="server",
                     service="svc", method="<batch>") == 1

    def test_batch_shed_fails_whole_batch(self, setup):
        net, rpc = setup
        rpc.register("server", "slow", SlowService(net))
        net.install_station("server", workers=1, queue_depth=0)
        t = net.clock.now
        with rpc.open_loop(t):
            rpc.call("client", "server", "slow", "work")
        from repro.errors import ServerBusy
        with pytest.raises(ServerBusy):
            with rpc.open_loop(t):
                rpc.call_batch("client", "server", "slow",
                               [("work", {})] * 3)
        assert rpc.last_timing.shed
        assert net.obs.metrics.get("srb.admission.shed", host="server",
                                   service="slow", method="<batch>") == 1

    def test_queue_wait_span_emitted(self, setup):
        net, rpc = setup
        st = net.install_station("server", workers=1)
        st.complete(st.admit(net.clock.now), 5.0)
        with net.obs.tracer.trace("test") as root:
            rpc.call("client", "server", "svc", "echo", text="x")
        spans = root.find("srb.queue.wait")
        assert len(spans) == 1
        assert spans[0].attrs["host"] == "server"
        assert spans[0].attrs["wait_s"] > 0
