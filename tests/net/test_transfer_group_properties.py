"""Property-based tests for :class:`repro.net.simnet.TransferGroup`.

Random member sets against the makespan invariants the overlapped data
plane (experiment E14) relies on:

* the clock advances by exactly the latest member completion;
* a group is never faster than its largest single member;
* a group is never slower than serial execution of the same members;
* a downed member charges its timeout without poisoning siblings.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.simnet import Network, TransferGroup, WAN

N_DSTS = 4

members = st.lists(
    st.tuples(st.integers(min_value=0, max_value=N_DSTS - 1),   # dst index
              st.integers(min_value=0, max_value=2_000_000),    # nbytes
              st.integers(min_value=1, max_value=8)),           # streams
    min_size=1, max_size=10)


def build_net() -> Network:
    net = Network()
    net.add_host("src")
    for i in range(N_DSTS):
        net.add_host(f"dst{i}")
    return net


def run_group(net: Network, ms, down=()):
    for name in down:
        net.set_down(name)
    group = TransferGroup(net, label="prop")
    for dst, nbytes, streams in ms:
        group.add("src", f"dst{dst}", nbytes, streams=streams)
    return group.run()


class TestMakespanInvariants:
    @settings(max_examples=60, deadline=None)
    @given(members)
    def test_clock_advance_equals_max_completion(self, ms):
        net = build_net()
        t0 = net.clock.now
        outcomes = run_group(net, ms)
        assert net.clock.now - t0 == \
            pytest.approx(max(o.done for o in outcomes) - t0)

    @settings(max_examples=60, deadline=None)
    @given(members)
    def test_never_below_largest_single_member(self, ms):
        net = build_net()
        t0 = net.clock.now
        run_group(net, ms)
        largest = max(WAN.cost(nbytes, streams=streams)
                      for _dst, nbytes, streams in ms)
        assert net.clock.now - t0 >= largest - 1e-12

    @settings(max_examples=60, deadline=None)
    @given(members)
    def test_never_slower_than_serial(self, ms):
        net = build_net()
        t0 = net.clock.now
        run_group(net, ms)
        serial = sum(WAN.cost(nbytes, streams=streams)
                     for _dst, nbytes, streams in ms)
        assert net.clock.now - t0 <= serial + 1e-12

    @settings(max_examples=60, deadline=None)
    @given(members)
    def test_accounting_matches_membership(self, ms):
        net = build_net()
        outcomes = run_group(net, ms)
        assert len(outcomes) == len(ms)
        assert net.messages_sent == len(ms)
        assert net.bytes_sent == sum(nbytes for _d, nbytes, _s in ms)
        assert net.failed_attempts == 0


class TestDownedMember:
    @settings(max_examples=60, deadline=None)
    @given(members, st.integers(min_value=0, max_value=N_DSTS - 1))
    def test_downed_member_charges_timeout_without_poisoning(self, ms, dead):
        net = build_net()
        outcomes = run_group(net, ms, down=[f"dst{dead}"])
        for (dst, _nbytes, _streams), outcome in zip(ms, outcomes):
            if dst == dead:
                assert not outcome.ok
                assert outcome.done - outcome.start == \
                    pytest.approx(2 * WAN.latency_s)
            else:
                assert outcome.ok
        dead_count = sum(1 for dst, _n, _s in ms if dst == dead)
        assert net.failed_attempts == dead_count
        assert net.bytes_sent == sum(n for d, n, _s in ms if d != dead)
