"""Unit tests for hierarchical virtual-time trace spans."""

import pytest

from repro.obs.trace import Tracer
from repro.util.clock import SimClock


@pytest.fixture
def tracer():
    return Tracer(SimClock())


class TestNesting:
    def test_children_nest_under_parent(self, tracer):
        with tracer.trace("root"):
            with tracer.span("a"):
                with tracer.span("b"):
                    pass
            with tracer.span("c"):
                pass
        root = tracer.last()
        assert [c.name for c in root.children] == ["a", "c"]
        assert [c.name for c in root.children[0].children] == ["b"]

    def test_durations_track_the_clock(self, tracer):
        clock = tracer.clock
        with tracer.trace("root"):
            clock.advance(1.0)
            with tracer.span("child"):
                clock.advance(2.0)
            clock.advance(0.5)
        root = tracer.last()
        assert root.duration == pytest.approx(3.5)
        assert root.children[0].duration == pytest.approx(2.0)
        assert root.self_duration == pytest.approx(1.5)

    def test_find_and_walk(self, tracer):
        with tracer.trace("root"):
            with tracer.span("x"):
                with tracer.span("x"):
                    pass
        root = tracer.last()
        assert len(root.find("x")) == 2
        assert len(list(root.walk())) == 3


class TestDemandDriven:
    def test_span_is_noop_outside_a_trace(self, tracer):
        with tracer.span("orphan") as sp:
            assert sp is None
        tracer.add("messages", 5)
        assert tracer.traces == []
        assert not tracer.active

    def test_active_only_inside_trace(self, tracer):
        assert not tracer.active
        with tracer.trace("root"):
            assert tracer.active
            assert tracer.current.name == "root"
        assert not tracer.active


class TestCounters:
    def test_add_hits_innermost_span(self, tracer):
        with tracer.trace("root"):
            tracer.add("messages")
            with tracer.span("child"):
                tracer.add("messages")
                tracer.add("bytes", 100)
        root = tracer.last()
        assert root.counters == {"messages": 1}
        assert root.total("messages") == 2
        assert root.total("bytes") == 100


class TestErrors:
    def test_exception_recorded_and_propagated(self, tracer):
        with pytest.raises(ValueError):
            with tracer.trace("root"):
                with tracer.span("child"):
                    raise ValueError("boom")
        root = tracer.last()
        assert "boom" in root.children[0].error
        assert "boom" in root.error


class TestBoundedKeep:
    def test_old_traces_dropped(self):
        tracer = Tracer(SimClock(), keep=3)
        for i in range(5):
            with tracer.trace(f"t{i}"):
                pass
        assert len(tracer.traces) == 3
        assert tracer.dropped == 2
        assert tracer.last().name == "t4"


class TestExport:
    def test_events_flatten_with_depth(self, tracer):
        with tracer.trace("root", path="/z/f"):
            with tracer.span("child"):
                pass
        events = tracer.events(tracer.last())
        assert [(e["name"], e["depth"]) for e in events] == [
            ("root", 0), ("child", 1)]
        assert events[0]["attrs"] == {"path": "/z/f"}

    def test_render_shows_tree(self, tracer):
        with tracer.trace("root"):
            with tracer.span("child", host="h0"):
                tracer.add("bytes", 7)
        text = tracer.render()
        assert "root" in text
        assert "  child host=h0" in text
        assert "bytes=7" in text

    def test_render_without_traces(self, tracer):
        assert "no trace" in tracer.render()
