"""Unit tests for the labeled counter/histogram metrics registry."""

import pytest

from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def reg():
    return MetricsRegistry()


class TestCounters:
    def test_inc_and_get(self, reg):
        reg.inc("net.messages", src="a", dst="b")
        reg.inc("net.messages", src="a", dst="b")
        reg.inc("net.messages", src="b", dst="a")
        assert reg.get("net.messages", src="a", dst="b") == 2
        assert reg.get("net.messages", src="b", dst="a") == 1

    def test_label_order_irrelevant(self, reg):
        reg.inc("m", src="a", dst="b")
        assert reg.get("m", dst="b", src="a") == 1

    def test_unknown_series_is_zero(self, reg):
        assert reg.get("nope", x="y") == 0
        assert reg.total("nope") == 0

    def test_total_sums_label_sets(self, reg):
        reg.inc("m", k="a")
        reg.inc("m", 5, k="b")
        assert reg.total("m") == 6

    def test_series_keys_render_labels(self, reg):
        reg.inc("m", op="read", driver="fs")
        assert reg.series("m") == {"{driver=fs,op=read}": 1}

    def test_counter_names_sorted(self, reg):
        reg.inc("b")
        reg.inc("a")
        assert reg.counter_names() == ["a", "b"]


class TestHistograms:
    def test_observe_statistics(self, reg):
        for v in (0.1, 0.2, 0.3):
            reg.observe("rpc.call_s", v, method="get")
        h = reg.histogram("rpc.call_s", method="get")
        assert h.count == 3
        assert h.mean == pytest.approx(0.2)
        assert h.min == pytest.approx(0.1)
        assert h.max == pytest.approx(0.3)

    def test_bucket_counts(self, reg):
        reg.observe("h", 0.005)
        reg.observe("h", 0.005)
        reg.observe("h", 50.0)
        h = reg.histogram("h")
        assert sum(h.bucket_counts) == 3

    def test_histogram_series(self, reg):
        reg.observe("h", 1.0, method="a")
        reg.observe("h", 2.0, method="b")
        series = reg.histogram_series("h")
        assert set(series) == {"{method=a}", "{method=b}"}


class TestSnapshots:
    def test_snapshot_includes_histogram_count_sum(self, reg):
        reg.inc("c", host="h0")
        reg.observe("h", 0.5)
        snap = reg.snapshot()
        assert snap["c{host=h0}"] == 1
        assert snap["h:count"] == 1
        assert snap["h:sum"] == 0.5

    def test_delta_reports_only_changes(self, reg):
        reg.inc("stable")
        reg.inc("moving")
        before = reg.snapshot()
        reg.inc("moving", 4)
        reg.inc("fresh")
        assert reg.delta(before) == {"moving": 4, "fresh": 1}

    def test_sum_matching_crosses_label_sets(self, reg):
        reg.inc("net.messages", src="a")
        reg.inc("net.messages", 2, src="b")
        reg.inc("net.messages_other")
        snap = reg.snapshot()
        assert MetricsRegistry.sum_matching(snap, "net.messages") == 3


class TestRender:
    def test_render_lines(self, reg):
        reg.inc("rpc.calls", method="get")
        reg.inc("net.bytes", 10)
        text = reg.render()
        assert "rpc.calls{method=get} 1" in text
        assert "net.bytes 10" in text

    def test_render_prefix_filter(self, reg):
        reg.inc("rpc.calls")
        reg.inc("net.bytes")
        assert "net.bytes" not in reg.render(prefixes=["rpc"])

    def test_clear(self, reg):
        reg.inc("m")
        reg.observe("h", 1.0)
        reg.clear()
        assert reg.snapshot() == {}
