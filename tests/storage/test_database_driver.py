"""Unit tests for the database resource driver (LOBs + registered SQL)."""

import pytest

from repro.db import Column
from repro.errors import AlreadyExists, DatabaseError, NoSuchPhysicalFile
from repro.storage.database import DatabaseResourceDriver


@pytest.fixture
def drv():
    return DatabaseResourceDriver(name="dlib1")


class TestLobs:
    def test_create_read(self, drv):
        drv.create("/lob/a", b"payload")
        assert drv.read("/lob/a") == b"payload"

    def test_duplicate(self, drv):
        drv.create("/a", b"")
        with pytest.raises(AlreadyExists):
            drv.create("/a", b"")

    def test_missing(self, drv):
        with pytest.raises(NoSuchPhysicalFile):
            drv.read("/nope")

    def test_ranged_read(self, drv):
        drv.create("/a", b"0123456789")
        assert drv.read("/a", 3, 4) == b"3456"

    def test_write_patch_and_extend(self, drv):
        drv.create("/a", b"aaaa")
        drv.write("/a", b"bb", offset=3)
        assert drv.read("/a") == b"aaabb"

    def test_append(self, drv):
        drv.create("/a", b"ab")
        drv.append("/a", b"cd")
        assert drv.read("/a") == b"abcd"

    def test_delete(self, drv):
        drv.create("/a", b"x")
        drv.delete("/a")
        assert not drv.exists("/a")

    def test_size_and_used(self, drv):
        drv.create("/a", b"abc")
        drv.create("/b", b"de")
        assert drv.size("/a") == 3
        assert drv.used_bytes() == 5

    def test_list_dir(self, drv):
        drv.create("/d/x", b"")
        drv.create("/d/s/y", b"")
        assert drv.list_dir("/d") == ["s/", "x"]


class TestUserTablesAndSql:
    def test_registered_select_executes(self, drv):
        t = drv.create_user_table("stars", [Column("name", "TEXT"),
                                            Column("mag", "FLOAT")])
        t.insert({"name": "Vega", "mag": 0.03})
        t.insert({"name": "Sirius", "mag": -1.46})
        rs = drv.execute_sql("SELECT name FROM stars WHERE mag < 0")
        assert rs.rows == [("Sirius",)]

    def test_query_answer_varies_with_time(self, drv):
        """"The query is executed at retrieval time ... the answer to the
        query can vary with time."""
        t = drv.create_user_table("events", [Column("n", "INT")])
        sql = "SELECT COUNT(*) FROM events"
        assert drv.execute_sql(sql).scalar() == 0
        t.insert({"n": 1})
        assert drv.execute_sql(sql).scalar() == 1

    def test_non_select_rejected(self, drv):
        with pytest.raises(DatabaseError):
            drv.execute_sql("DROP TABLE lobs")

    def test_lobs_table_reserved(self, drv):
        with pytest.raises(DatabaseError):
            drv.create_user_table("lobs", [Column("x", "INT")])

    def test_join_supported(self, drv):
        a = drv.create_user_table("a", [Column("k", "INT"),
                                        Column("v", "TEXT")])
        b = drv.create_user_table("b", [Column("k", "INT"),
                                        Column("w", "TEXT")])
        a.insert({"k": 1, "v": "x"})
        b.insert({"k": 1, "w": "y"})
        rs = drv.execute_sql("SELECT a.v, b.w FROM a JOIN b ON b.k = a.k")
        assert rs.rows == [("x", "y")]

    def test_union_supported(self, drv):
        a = drv.create_user_table("t1", [Column("v", "TEXT")])
        a.insert({"v": "x"})
        rs = drv.execute_sql("SELECT v FROM t1 UNION ALL SELECT v FROM t1")
        assert len(rs.rows) == 2

    def test_params_supported(self, drv):
        t = drv.create_user_table("nums", [Column("n", "INT")])
        for i in range(5):
            t.insert({"n": i})
        rs = drv.execute_sql("SELECT n FROM nums WHERE n > ?", [2])
        assert len(rs.rows) == 2
