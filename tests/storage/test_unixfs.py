"""Unit tests for the POSIX-backed driver."""

import pytest

from repro.errors import AlreadyExists, NoSuchPhysicalFile, StorageError
from repro.storage.unixfs import UnixFsDriver


@pytest.fixture
def fs(tmp_path):
    return UnixFsDriver(root=str(tmp_path / "res"))


class TestCrud:
    def test_create_read(self, fs):
        fs.create("/a/b.txt", b"hello")
        assert fs.read("/a/b.txt") == b"hello"

    def test_file_lands_on_disk(self, fs, tmp_path):
        fs.create("/a/b.txt", b"hello")
        assert (tmp_path / "res" / "a" / "b.txt").read_bytes() == b"hello"

    def test_duplicate(self, fs):
        fs.create("/x", b"")
        with pytest.raises(AlreadyExists):
            fs.create("/x", b"")

    def test_missing(self, fs):
        with pytest.raises(NoSuchPhysicalFile):
            fs.read("/nope")

    def test_ranged_read(self, fs):
        fs.create("/f", b"0123456789")
        assert fs.read("/f", 2, 3) == b"234"

    def test_write_and_append(self, fs):
        fs.create("/f", b"aaaa")
        fs.write("/f", b"bb", offset=1)
        fs.append("/f", b"cc")
        assert fs.read("/f") == b"abbacc"

    def test_write_past_eof_rejected(self, fs):
        fs.create("/f", b"ab")
        with pytest.raises(StorageError):
            fs.write("/f", b"x", offset=10)

    def test_delete(self, fs):
        fs.create("/f", b"x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_size(self, fs):
        fs.create("/f", b"abc")
        assert fs.size("/f") == 3

    def test_list_dir(self, fs):
        fs.create("/d/a.txt", b"")
        fs.create("/d/sub/b.txt", b"")
        assert fs.list_dir("/d") == ["a.txt", "sub/"]

    def test_escape_attempt_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.create("/../../etc/passwd", b"")

    def test_used_bytes(self, fs):
        fs.create("/a", b"ab")
        fs.create("/d/b", b"cde")
        assert fs.used_bytes() == 5

    def test_wipe(self, fs):
        fs.create("/a", b"x")
        fs.wipe()
        assert not fs.exists("/a")
        fs.create("/a", b"y")   # usable after wipe
