"""Edge-case tests for the archive (HSM) model: writes against
tape-resident files, custom cost profiles, linger windows, capacity."""

import pytest

from repro.storage.archive import ArchiveDriver, TapeCost
from repro.util.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


class TestTapeResidentWrites:
    def test_write_stages_first(self, clock):
        arc = ArchiveDriver(clock=clock)
        arc.create("/f", b"0123456789")
        arc.purge_cache()
        t0 = clock.now
        arc.write("/f", b"XX", offset=2)
        assert clock.now - t0 >= arc.tape_cost.tape_mount_s  # staged
        assert arc.read("/f") == b"01XX456789"

    def test_append_stages_first(self, clock):
        arc = ArchiveDriver(clock=clock)
        arc.create("/f", b"ab")
        arc.purge_cache()
        arc.append("/f", b"cd")
        assert arc.stages == 1
        arc.purge_cache()
        assert arc.read("/f") == b"abcd"

    def test_write_migrates_to_tape(self, clock):
        arc = ArchiveDriver(clock=clock)
        arc.create("/f", b"old")
        arc.write("/f", b"new", offset=0)
        arc.purge_cache()               # drop the cache copy
        assert arc.read("/f") == b"new"  # tape had the update


class TestCostProfiles:
    def test_custom_tape_cost_respected(self, clock):
        fast = TapeCost(tape_mount_s=1.0, tape_seek_s=0.1, tape_bps=100e6,
                        mount_linger_s=5.0)
        arc = ArchiveDriver(clock=clock, tape=fast)
        arc.create("/f", b"x" * 1000)
        arc.purge_cache()
        t0 = clock.now
        arc.read("/f")
        assert clock.now - t0 == pytest.approx(
            1.0 + 0.1 + 1000 / 100e6 + arc.cost.read_cost(1000), rel=0.01)

    def test_streaming_cost_scales_with_size(self, clock):
        arc = ArchiveDriver(clock=clock)
        arc.create("/small", b"x" * 1000)
        arc.create("/big", b"x" * 50_000_000)
        arc.purge_cache()
        t0 = clock.now
        arc.read("/small")
        small_cost = clock.now - t0
        clock.advance(arc.tape_cost.mount_linger_s + 1)   # mount expires
        t0 = clock.now
        arc.read("/big")                # same fixed costs + real streaming
        big_cost = clock.now - t0
        assert big_cost > small_cost
        streaming = 50_000_000 / arc.tape_cost.tape_bps
        assert big_cost - small_cost == pytest.approx(streaming, rel=0.5)

    def test_linger_window_boundary(self, clock):
        arc = ArchiveDriver(clock=clock)
        arc.create("/a", b"x")
        arc.create("/b", b"x")
        arc.purge_cache()
        arc.read("/a")
        clock.advance(arc.tape_cost.mount_linger_s - 1.0)
        arc.read("/b")                  # just inside: no new mount
        assert arc.tape_mounts == 1


class TestRangedReadsFromCache:
    def test_member_style_ranged_read(self, clock):
        """Container members read slices; only the slice is charged after
        the stage."""
        arc = ArchiveDriver(clock=clock)
        arc.create("/cont", b"".join(bytes([i]) * 100 for i in range(10)))
        arc.purge_cache()
        first = arc.read("/cont", 0, 100)      # stages whole container
        assert first == bytes([0]) * 100
        stages = arc.stages
        for i in range(1, 10):
            data = arc.read("/cont", i * 100, 100)
            assert data == bytes([i]) * 100
        assert arc.stages == stages            # all served from cache
