"""Unit tests for the resource registry + web space."""

import pytest

from repro.errors import NoSuchPhysicalFile, NoSuchResource, StorageError
from repro.net.simnet import Network
from repro.storage.memfs import MemFsDriver
from repro.storage.resource import PhysicalResource, ResourceRegistry
from repro.storage.web import WebSpace


@pytest.fixture
def net():
    n = Network()
    n.add_host("sdsc")
    n.add_host("caltech")
    return n


@pytest.fixture
def reg(net):
    r = ResourceRegistry(net)
    r.add_physical(PhysicalResource("unix-sdsc", "sdsc", MemFsDriver()))
    r.add_physical(PhysicalResource("unix-caltech", "caltech", MemFsDriver()))
    return r


class TestPhysical:
    def test_lookup(self, reg):
        assert reg.physical("unix-sdsc").host == "sdsc"

    def test_unknown(self, reg):
        with pytest.raises(NoSuchResource):
            reg.physical("nope")

    def test_duplicate_name_rejected(self, reg):
        with pytest.raises(StorageError):
            reg.add_physical(PhysicalResource("unix-sdsc", "sdsc",
                                              MemFsDriver()))

    def test_unknown_host_rejected(self, reg):
        from repro.errors import HostUnreachable
        with pytest.raises(HostUnreachable):
            reg.add_physical(PhysicalResource("x", "ghost", MemFsDriver()))

    def test_bad_rtype_rejected(self):
        with pytest.raises(StorageError):
            PhysicalResource("x", "sdsc", MemFsDriver(), rtype="floppy")

    def test_availability_follows_host(self, reg, net):
        assert reg.available("unix-sdsc")
        net.set_down("sdsc")
        assert not reg.available("unix-sdsc")

    def test_describe(self, reg):
        d = reg.describe("unix-sdsc")
        assert d["kind"] == "physical" and d["up"] is True


class TestLogical:
    def test_resolve_logical_in_order(self, reg):
        reg.add_logical("lr", ["unix-caltech", "unix-sdsc"])
        assert [r.name for r in reg.resolve("lr")] == \
            ["unix-caltech", "unix-sdsc"]

    def test_resolve_physical_to_itself(self, reg):
        assert [r.name for r in reg.resolve("unix-sdsc")] == ["unix-sdsc"]

    def test_logical_needs_existing_members(self, reg):
        with pytest.raises(NoSuchResource):
            reg.add_logical("lr", ["ghost"])

    def test_duplicate_members_rejected(self, reg):
        with pytest.raises(StorageError):
            reg.add_logical("lr", ["unix-sdsc", "unix-sdsc"])

    def test_name_collision_with_physical(self, reg):
        with pytest.raises(StorageError):
            reg.add_logical("unix-sdsc", ["unix-caltech"])

    def test_describe_logical(self, reg):
        reg.add_logical("lr", ["unix-sdsc"])
        assert reg.describe("lr")["members"] == ["unix-sdsc"]

    def test_remove(self, reg):
        reg.add_logical("lr", ["unix-sdsc"])
        reg.remove("lr")
        assert not reg.exists("lr")


class TestWebSpace:
    def test_publish_fetch(self, net):
        web = WebSpace(net)
        web.publish("http://example.org/x", b"content")
        assert web.fetch("http://example.org/x", "sdsc") == b"content"

    def test_unpublished_url(self, net):
        web = WebSpace(net)
        with pytest.raises(NoSuchPhysicalFile):
            web.fetch("http://example.org/x", "sdsc")

    def test_callable_content_varies(self, net):
        web = WebSpace(net)
        counter = {"n": 0}

        def cgi() -> bytes:
            counter["n"] += 1
            return f"call {counter['n']}".encode()

        web.publish("http://example.org/cgi?q=1", cgi)
        assert web.fetch("http://example.org/cgi?q=1", "sdsc") == b"call 1"
        assert web.fetch("http://example.org/cgi?q=1", "sdsc") == b"call 2"

    def test_ftp_scheme_allowed(self, net):
        web = WebSpace(net)
        web.publish("ftp://mirror.org/file", b"x")

    def test_bad_scheme_rejected(self, net):
        web = WebSpace(net)
        with pytest.raises(StorageError):
            web.publish("gopher://old.org/x", b"x")

    def test_fetch_charges_network(self, net):
        web = WebSpace(net)
        web.publish("http://example.org/big", b"x" * 100_000)
        t0 = net.clock.now
        web.fetch("http://example.org/big", "sdsc")
        assert net.clock.now > t0

    def test_unpublish(self, net):
        web = WebSpace(net)
        web.publish("http://example.org/x", b"c")
        web.unpublish("http://example.org/x")
        assert not web.is_published("http://example.org/x")
