"""Unit tests for the tape-archive (HSM) storage model."""

import pytest

from repro.errors import AlreadyExists, NoSuchPhysicalFile, PinnedFile
from repro.storage.archive import ArchiveDriver, TapeCost
from repro.util.clock import SimClock


@pytest.fixture
def clock():
    return SimClock()


@pytest.fixture
def arc(clock):
    return ArchiveDriver(clock=clock)


class TestBasicIO:
    def test_create_read(self, arc):
        arc.create("/f", b"data")
        assert arc.read("/f") == b"data"

    def test_duplicate_rejected(self, arc):
        arc.create("/f", b"")
        with pytest.raises(AlreadyExists):
            arc.create("/f", b"")

    def test_missing_file(self, arc):
        with pytest.raises(NoSuchPhysicalFile):
            arc.read("/nope")

    def test_write_and_append_update_tape_copy(self, arc):
        arc.create("/f", b"ab")
        arc.append("/f", b"cd")
        arc.write("/f", b"X", offset=0)
        arc.purge_cache()
        assert arc.read("/f") == b"Xbcd"

    def test_delete(self, arc):
        arc.create("/f", b"x")
        arc.delete("/f")
        assert not arc.exists("/f")

    def test_size_cached_and_uncached(self, arc):
        arc.create("/f", b"abc")
        assert arc.size("/f") == 3
        arc.purge_cache()
        assert arc.size("/f") == 3

    def test_list_dir(self, arc):
        arc.create("/d/a", b"")
        arc.create("/d/sub/b", b"")
        arc.purge_cache()
        assert arc.list_dir("/d") == ["a", "sub/"]


class TestStagingCosts:
    def test_create_lands_in_cache_cheaply(self, arc, clock):
        arc.create("/f", b"x" * 1000)
        assert clock.now < 1.0          # no tape mount on write

    def test_cached_read_is_cheap(self, arc, clock):
        arc.create("/f", b"x" * 1000)
        t0 = clock.now
        arc.read("/f")
        assert clock.now - t0 < 0.01

    def test_uncached_read_pays_mount_and_seek(self, arc, clock):
        arc.create("/f", b"x" * 1000)
        arc.purge_cache()
        t0 = clock.now
        arc.read("/f")
        cost = clock.now - t0
        assert cost >= arc.tape_cost.tape_mount_s + arc.tape_cost.tape_seek_s
        assert arc.stages == 1
        assert arc.tape_mounts == 1

    def test_mount_lingers_across_consecutive_stages(self, arc, clock):
        arc.create("/a", b"x"); arc.create("/b", b"x")
        arc.purge_cache()
        arc.read("/a")
        t0 = clock.now
        arc.read("/b")                   # within linger window
        assert clock.now - t0 < arc.tape_cost.tape_mount_s
        assert arc.tape_mounts == 1

    def test_mount_expires_after_linger(self, arc, clock):
        arc.create("/a", b"x"); arc.create("/b", b"x")
        arc.purge_cache()
        arc.read("/a")
        clock.advance(arc.tape_cost.mount_linger_s + 1)
        arc.read("/b")
        assert arc.tape_mounts == 2

    def test_second_read_hits_cache(self, arc):
        arc.create("/f", b"x")
        arc.purge_cache()
        arc.read("/f")
        stages_before = arc.stages
        arc.read("/f")
        assert arc.stages == stages_before


class TestCacheManagement:
    def test_purge_flushes_unpinned(self, arc):
        arc.create("/a", b"x")
        assert arc.is_cached("/a")
        assert arc.purge_cache() == 1
        assert not arc.is_cached("/a")
        assert arc.exists("/a")          # tape copy remains

    def test_pinned_survives_purge(self, arc):
        arc.create("/a", b"x")
        arc.pin("/a")
        assert arc.purge_cache() == 0
        assert arc.is_cached("/a")

    def test_unpin_enables_purge(self, arc):
        arc.create("/a", b"x")
        arc.pin("/a")
        arc.unpin("/a")
        assert arc.purge_cache() == 1

    def test_pinned_delete_refused(self, arc):
        arc.create("/a", b"x")
        arc.pin("/a")
        with pytest.raises(PinnedFile):
            arc.delete("/a")

    def test_lru_eviction_respects_capacity_and_pins(self, clock):
        arc = ArchiveDriver(clock=clock, cache_capacity_bytes=250)
        arc.create("/a", b"x" * 100)
        arc.create("/b", b"x" * 100)
        arc.pin("/a")
        arc.create("/c", b"x" * 100)   # over capacity: evict LRU unpinned (/b)
        assert arc.is_cached("/a")
        assert not arc.is_cached("/b")
        assert arc.is_cached("/c")
        assert arc.exists("/b")         # still on tape

    def test_is_pinned(self, arc):
        arc.create("/a", b"x")
        assert not arc.is_pinned("/a")
        arc.pin("/a")
        assert arc.is_pinned("/a")

    def test_read_refreshes_lru(self, clock):
        arc = ArchiveDriver(clock=clock, cache_capacity_bytes=250)
        arc.create("/a", b"x" * 100)
        arc.create("/b", b"x" * 100)
        arc.read("/a")                  # /a becomes most-recent
        arc.create("/c", b"x" * 100)    # evicts /b, not /a
        assert arc.is_cached("/a")
        assert not arc.is_cached("/b")

    def test_used_bytes_counts_tape(self, arc):
        arc.create("/a", b"x" * 10)
        arc.purge_cache()
        assert arc.used_bytes() == 10
