"""Unit + property tests for the in-memory FS driver."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import AlreadyExists, NoSuchPhysicalFile, StorageError, StorageFull
from repro.storage.memfs import MemFsDriver
from repro.util.clock import SimClock


@pytest.fixture
def fs():
    return MemFsDriver()


class TestCrud:
    def test_create_read(self, fs):
        fs.create("/a/b.txt", b"hello")
        assert fs.read("/a/b.txt") == b"hello"

    def test_create_duplicate_rejected(self, fs):
        fs.create("/x", b"")
        with pytest.raises(AlreadyExists):
            fs.create("/x", b"")

    def test_read_missing(self, fs):
        with pytest.raises(NoSuchPhysicalFile):
            fs.read("/nope")

    def test_ranged_read(self, fs):
        fs.create("/f", b"0123456789")
        assert fs.read("/f", 2, 3) == b"234"

    def test_read_past_eof_truncates(self, fs):
        fs.create("/f", b"abc")
        assert fs.read("/f", 1, 100) == b"bc"

    def test_read_bad_offset(self, fs):
        fs.create("/f", b"abc")
        with pytest.raises(StorageError):
            fs.read("/f", 10)

    def test_write_in_place(self, fs):
        fs.create("/f", b"aaaa")
        fs.write("/f", b"bb", offset=1)
        assert fs.read("/f") == b"abba"

    def test_write_extends(self, fs):
        fs.create("/f", b"ab")
        fs.write("/f", b"cd", offset=2)
        assert fs.read("/f") == b"abcd"

    def test_append(self, fs):
        fs.create("/f", b"ab")
        fs.append("/f", b"cd")
        assert fs.read("/f") == b"abcd"

    def test_delete(self, fs):
        fs.create("/f", b"x")
        fs.delete("/f")
        assert not fs.exists("/f")

    def test_size(self, fs):
        fs.create("/f", b"abc")
        assert fs.size("/f") == 3

    def test_path_normalization(self, fs):
        fs.create("a//b", b"x")
        assert fs.exists("/a/b")

    def test_dotdot_rejected(self, fs):
        with pytest.raises(StorageError):
            fs.create("/a/../b", b"")


class TestListing:
    def test_list_dir_files_and_subdirs(self, fs):
        fs.create("/d/a.txt", b"")
        fs.create("/d/sub/b.txt", b"")
        assert fs.list_dir("/d") == ["a.txt", "sub/"]

    def test_list_root(self, fs):
        fs.create("/top.txt", b"")
        assert fs.list_dir("/") == ["top.txt"]

    def test_list_empty_dir(self, fs):
        assert fs.list_dir("/nothing") == []


class TestAccounting:
    def test_clock_charged_proportionally(self):
        clock = SimClock()
        fs = MemFsDriver(clock=clock)
        fs.create("/small", b"x")
        t_small = clock.now
        fs.create("/big", b"x" * 10_000_000)
        assert clock.now - t_small > t_small

    def test_counters(self, fs):
        fs.create("/f", b"abcd")
        fs.read("/f")
        assert fs.bytes_written == 4
        assert fs.bytes_read == 4
        assert fs.ops == 2

    def test_used_bytes(self, fs):
        fs.create("/a", b"ab")
        fs.create("/b", b"cde")
        assert fs.used_bytes() == 5

    def test_capacity_enforced(self):
        fs = MemFsDriver(capacity_bytes=10)
        fs.create("/a", b"x" * 8)
        with pytest.raises(StorageFull):
            fs.create("/b", b"x" * 8)

    def test_capacity_on_append(self):
        fs = MemFsDriver(capacity_bytes=10)
        fs.create("/a", b"x" * 8)
        with pytest.raises(StorageFull):
            fs.append("/a", b"x" * 8)


class TestProperties:
    @given(st.binary(max_size=500), st.binary(max_size=500))
    def test_append_is_concat(self, a, b):
        fs = MemFsDriver()
        fs.create("/f", a)
        fs.append("/f", b)
        assert fs.read("/f") == a + b

    @given(st.binary(min_size=1, max_size=300),
           st.integers(min_value=0, max_value=299),
           st.integers(min_value=0, max_value=300))
    def test_ranged_read_matches_slicing(self, data, offset, length):
        fs = MemFsDriver()
        fs.create("/f", data)
        if offset <= len(data):
            assert fs.read("/f", offset, length) == data[offset:offset + length]

    @given(st.binary(max_size=200), st.binary(max_size=50),
           st.integers(min_value=0, max_value=200))
    def test_write_matches_patching(self, base, patch, offset):
        fs = MemFsDriver()
        fs.create("/f", base)
        if offset <= len(base):
            fs.write("/f", patch, offset)
            expected = bytearray(base)
            grow = max(0, offset + len(patch) - len(base))
            expected.extend(b"\x00" * grow)
            expected[offset:offset + len(patch)] = patch
            assert fs.read("/f") == bytes(expected)
