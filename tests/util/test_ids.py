"""Unit tests for deterministic id generation."""

from repro.util.ids import IdFactory, session_key


class TestIdFactory:
    def test_monotone_per_prefix(self):
        f = IdFactory()
        assert f.next("obj") == "obj-000001"
        assert f.next("obj") == "obj-000002"

    def test_prefixes_independent(self):
        f = IdFactory()
        f.next("obj")
        assert f.next("rep") == "rep-000001"

    def test_next_int(self):
        f = IdFactory()
        assert f.next_int("oid") == 1
        assert f.next_int("oid") == 2

    def test_peek_does_not_increment(self):
        f = IdFactory()
        f.next_int("x")
        assert f.peek("x") == 1
        assert f.peek("x") == 1

    def test_deterministic_across_instances(self):
        a, b = IdFactory(), IdFactory()
        assert [a.next("k") for _ in range(5)] == [b.next("k") for _ in range(5)]


class TestSessionKey:
    def test_format(self):
        f = IdFactory()
        key = session_key(f, "sekar")
        assert key.startswith("sk-000001-")

    def test_unique_per_call(self):
        f = IdFactory()
        assert session_key(f, "a") != session_key(f, "a")

    def test_depends_on_user(self):
        # same serial, different user -> different digest
        k1 = session_key(IdFactory(), "alice")
        k2 = session_key(IdFactory(), "bob")
        assert k1 != k2
