"""Unit + property tests for the logical path algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidPath
from repro.util import paths


class TestSplitJoin:
    def test_split_simple(self):
        assert paths.split("/zone/home/x") == ("zone", "home", "x")

    def test_split_root(self):
        assert paths.split("/") == ()

    def test_split_requires_absolute(self):
        with pytest.raises(InvalidPath):
            paths.split("zone/home")

    def test_component_with_space_allowed(self):
        # collection names in the paper contain spaces ("Avian Culture")
        assert paths.split("/z/Avian Culture") == ("z", "Avian Culture")

    def test_empty_component_rejected(self):
        with pytest.raises(InvalidPath):
            paths.split("/z//x")

    def test_dotdot_rejected(self):
        with pytest.raises(InvalidPath):
            paths.split("/z/../x")

    def test_leading_space_component_rejected(self):
        with pytest.raises(InvalidPath):
            paths.validate_component(" name")

    def test_join_from_absolute(self):
        assert paths.join("/z/a", "b", "c") == "/z/a/b/c"

    def test_join_with_fragments(self):
        assert paths.join("/z", "a/b") == "/z/a/b"

    def test_from_components_root(self):
        assert paths.from_components([]) == "/"


class TestDirnameBasename:
    def test_dirname(self):
        assert paths.dirname("/z/a/b") == "/z/a"

    def test_dirname_of_toplevel(self):
        assert paths.dirname("/z") == "/"

    def test_dirname_of_root_fails(self):
        with pytest.raises(InvalidPath):
            paths.dirname("/")

    def test_basename(self):
        assert paths.basename("/z/a/b.txt") == "b.txt"

    def test_zone_of(self):
        assert paths.zone_of("/demozone/home/x") == "demozone"


class TestAncestors:
    def test_ancestors_list(self):
        assert paths.ancestors("/z/a/b") == ["/", "/z", "/z/a"]

    def test_root_has_no_ancestors(self):
        assert paths.ancestors("/") == []

    def test_is_ancestor_true(self):
        assert paths.is_ancestor("/z/a", "/z/a/b/c")

    def test_is_ancestor_strict(self):
        assert not paths.is_ancestor("/z/a", "/z/a")

    def test_is_ancestor_no_prefix_confusion(self):
        # "/z/ab" is NOT under "/z/a"
        assert not paths.is_ancestor("/z/a", "/z/ab")

    def test_root_is_ancestor_of_all(self):
        assert paths.is_ancestor("/", "/z")

    def test_depth(self):
        assert paths.depth("/") == 0
        assert paths.depth("/z/a/b") == 3


class TestRelocate:
    def test_relocate_moves_suffix(self):
        assert paths.relocate("/z/a/b/c", "/z/a", "/y/q") == "/y/q/b/c"

    def test_relocate_exact_prefix(self):
        assert paths.relocate("/z/a", "/z/a", "/y") == "/y"

    def test_relocate_requires_prefix(self):
        with pytest.raises(InvalidPath):
            paths.relocate("/z/other", "/z/a", "/y")


# -- property-based invariants ----------------------------------------------

component = st.text(
    alphabet=st.characters(blacklist_characters="/\x00",
                           blacklist_categories=("Cs",)),
    min_size=1, max_size=12,
).filter(lambda s: s == s.strip() and s not in (".", ".."))

logical_path = st.lists(component, min_size=1, max_size=6).map(
    paths.from_components)


class TestProperties:
    @given(logical_path)
    def test_join_dirname_basename_roundtrip(self, p):
        assert paths.join(paths.dirname(p), paths.basename(p)) == p

    @given(logical_path)
    def test_normalize_idempotent(self, p):
        assert paths.normalize(paths.normalize(p)) == paths.normalize(p)

    @given(logical_path)
    def test_split_from_components_roundtrip(self, p):
        assert paths.from_components(paths.split(p)) == p

    @given(logical_path)
    def test_ancestors_are_exactly_strict_prefixes(self, p):
        ancs = paths.ancestors(p)
        assert len(ancs) == paths.depth(p)
        for a in ancs:
            if a != "/":
                assert paths.is_ancestor(a, p)
        assert not paths.is_ancestor(p, p)

    @given(logical_path, component)
    def test_child_is_descendant(self, p, name):
        child = paths.join(p, name)
        assert paths.is_ancestor(p, child)
        assert paths.dirname(child) == p

    @given(logical_path, logical_path)
    def test_relocate_composes(self, p, q):
        # relocating p -> q -> p is identity for any descendant
        child = paths.join(p, "leaf")
        moved = paths.relocate(child, p, q)
        assert paths.relocate(moved, q, p) == child
