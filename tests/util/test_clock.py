"""Unit tests for the virtual clock."""

import pytest

from repro.util.clock import SimClock, Stopwatch


class TestAdvance:
    def test_starts_at_start(self):
        assert SimClock().now == 0.0
        assert SimClock(start=100.0).now == 100.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(2.5)
        assert clock.now == 4.0

    def test_advance_returns_new_time(self):
        clock = SimClock()
        assert clock.advance(3.0) == 3.0

    def test_zero_advance_allowed(self):
        clock = SimClock()
        clock.advance(0.0)
        assert clock.now == 0.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-0.1)

    def test_advance_to_absolute(self):
        clock = SimClock()
        clock.advance_to(10.0)
        assert clock.now == 10.0

    def test_advance_to_past_rejected(self):
        clock = SimClock()
        clock.advance(5.0)
        with pytest.raises(ValueError):
            clock.advance_to(4.0)


class TestTimers:
    def test_timer_fires_when_crossed(self):
        clock = SimClock()
        fired = []
        clock.call_at(5.0, lambda: fired.append(clock.now))
        clock.advance(4.0)
        assert fired == []
        clock.advance(2.0)
        assert fired == [5.0]

    def test_timers_fire_in_deadline_order(self):
        clock = SimClock()
        fired = []
        clock.call_at(7.0, lambda: fired.append("b"))
        clock.call_at(3.0, lambda: fired.append("a"))
        clock.advance(10.0)
        assert fired == ["a", "b"]

    def test_past_deadline_fires_on_next_advance(self):
        clock = SimClock()
        clock.advance(10.0)
        fired = []
        clock.call_at(5.0, lambda: fired.append(True))
        clock.advance(0.0)
        assert fired == [True]

    def test_timer_at_exact_boundary_fires(self):
        clock = SimClock()
        fired = []
        clock.call_at(2.0, lambda: fired.append(True))
        clock.advance(2.0)
        assert fired == [True]


class TestStopwatch:
    def test_measures_block(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        with sw:
            clock.advance(3.25)
        assert sw.elapsed == 3.25

    def test_split_mid_block(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        with sw:
            clock.advance(1.0)
            assert sw.split() == 1.0
            clock.advance(1.0)
        assert sw.elapsed == 2.0

    def test_reusable(self):
        clock = SimClock()
        sw = Stopwatch(clock)
        with sw:
            clock.advance(1.0)
        with sw:
            clock.advance(5.0)
        assert sw.elapsed == 5.0
