"""Tests for the benchmark harness itself."""

import pytest

from repro.bench import (
    ResultTable,
    assert_monotone,
    geometric_speedup,
    timed,
)
from repro.util.clock import SimClock


class TestResultTable:
    def test_render_contains_title_and_rows(self):
        t = ResultTable("demo", ["a", "b"])
        t.add_row([1, 2.5])
        out = t.render()
        assert "== demo ==" in out
        assert "2.50" in out

    def test_row_arity_enforced(self):
        t = ResultTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = ResultTable("demo", ["v"])
        for v in (0.0, 0.00012, 3.14159, 12345.6):
            t.add_row([v])
        out = t.render()
        assert "0.0001" in out          # small values keep precision
        assert "3.14" in out
        assert "12,346" in out          # big values get separators

    def test_column_accessor(self):
        t = ResultTable("demo", ["x", "y"])
        t.add_row([1, 10])
        t.add_row([2, 20])
        assert t.column("y") == [10, 20]

    def test_alignment(self):
        t = ResultTable("demo", ["name", "n"])
        t.add_row(["longer-name-than-header", 1])
        lines = t.render().splitlines()
        widths = {len(line) for line in lines[1:]}
        assert len(widths) == 1         # all rows padded to equal width


class TestTimed:
    def test_measures_virtual_time(self):
        clock = SimClock()
        m = timed(clock, lambda: clock.advance(2.5), label="op")
        assert m.virtual_s == 2.5
        assert m.label == "op"


class TestShapeHelpers:
    def test_geometric_speedup(self):
        assert geometric_speedup([4.0, 9.0], [2.0, 3.0]) == pytest.approx(
            (2.0 * 3.0) ** 0.5)

    def test_geometric_speedup_validates(self):
        with pytest.raises(ValueError):
            geometric_speedup([1.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            geometric_speedup([], [])

    def test_assert_monotone_increasing(self):
        assert_monotone([1, 2, 3])
        with pytest.raises(AssertionError):
            assert_monotone([1, 3, 2])

    def test_assert_monotone_decreasing(self):
        assert_monotone([3, 2, 1], increasing=False)
        with pytest.raises(AssertionError):
            assert_monotone([1, 2], increasing=False)

    def test_tolerance_allows_noise(self):
        assert_monotone([1.0, 0.99, 1.5], increasing=True, tolerance=0.05)
        with pytest.raises(AssertionError):
            assert_monotone([1.0, 0.80, 1.5], increasing=True,
                            tolerance=0.05)
